"""Batched trial engines for the paper's MIS process families.

Monte-Carlo validation of the paper's w.h.p. stabilization bounds needs
hundreds of independent trials per parameter point.  Running those
trials one process at a time wastes the hardware: every round of every
trial is a tiny matrix product plus Python overhead.  This module
simulates ``R`` independent replicas of a process family as a single
``(R, n)`` state matrix with a handful of vectorized neighbour
reductions per round (see
:meth:`repro.core.neighbor_ops.NeighborOps.count_batch` /
:meth:`~repro.core.neighbor_ops.NeighborOps.max_closed_batch`), while
keeping every replica bitwise-identical to the serial process it wraps.

Engine family
-------------

One engine per batchable process family, all sharing the run loop,
replica retirement and block-compaction machinery of
:class:`_BatchedMISEngine`:

* :class:`BatchedTwoStateMIS` — plain :class:`~repro.core.two_state.TwoStateMIS`
  (boolean state matrix, one ``count_batch`` per round);
* :class:`BatchedThreeStateMIS` — :class:`~repro.core.three_state.ThreeStateMIS`
  (int8 state matrix, two batched ``exists`` reductions per round);
* :class:`BatchedThreeColorMIS` — :class:`~repro.core.three_color.ThreeColorMIS`
  with the randomized logarithmic switch (colors plus a batched
  :class:`~repro.core.switch.RandomizedLogSwitch`, levels advancing in
  lockstep with Definition 28's coin order);
* :class:`BatchedScheduledTwoStateMIS` —
  :class:`~repro.core.schedulers.ScheduledTwoStateMIS` under the
  synchronous or independent-participation daemons (per-replica
  Bernoulli activation masks).

The :data:`dispatch table <_ENGINE_DISPATCH>` maps serial process types
to engines; :func:`engine_for` / :func:`batchable` are the lookups used
by :func:`repro.sim.runner.run_many_until_stable` and
:func:`repro.sim.montecarlo.estimate_stabilization_time` to group
processes by engine (no hardcoded type checks).

Aggregate engine
----------------

Every engine takes ``engine="auto" | "frontier" | "full"`` (default
``"auto"``, also exposed on the batched entry points): the frontier
modes maintain the per-replica neighbour counts and the stability
bookkeeping incrementally (:mod:`repro.core.batched_frontier`), so a
round's cost tracks the fleet's changed set — bulk rounds for the
early collapse, flat-index scatter updates plus O(1) retirement for
the long tail — instead of paying full ``(R, n)`` reductions every
round.  The 3-color engine accepts the kwarg but always runs the full
path (its switch diffuses over every closed neighbourhood per round).
Engines are reusable across :meth:`~_BatchedMISEngine.run` calls
(state is re-adopted per call), so fault-injection campaigns keep
their block-diagonal adjacency.

Equivalence contract
--------------------

Each replica keeps its *own* :class:`~repro.sim.rng.CoinSource` and
draws exactly the arrays its serial counterpart would, in the same
per-replica order (§2.1's φ_t discipline; for the 3-color process the
main φ_t draw precedes the switch's Bernoulli draw, and for scheduled
processes the daemon's draw precedes φ_t).  Neighbour aggregates are
exact integer reductions, so the trajectory of replica ``r`` is
bitwise-identical to running ``processes[r]`` through
:func:`repro.sim.runner.run_until_stable` with the same seed — the
equivalence tests in ``tests/test_batched.py`` and
``tests/test_batched_families.py`` pin this.

Replicas *retire* from the batch as they stabilize (or exhaust the
round budget): a stabilized replica stops consuming coins and stops
occupying rows of the live state matrix, exactly as a serial trial
would stop running.

Graph sharing
-------------

* If all replicas observe the *same* :class:`~repro.graphs.graph.Graph`
  object, each reduction is one ``(R, n) × (n, n)`` product against
  that graph's backend.
* Otherwise (e.g. G(n, p) experiments that resample the graph per
  trial), the replicas' adjacencies are stacked into one block-diagonal
  CSR matrix and each reduction is a single sparse matvec over the
  concatenated state vector.  The block matrix is rebuilt (compacted to
  the live replicas) only once at least half its rows have retired, so
  total rebuild cost is amortized logarithmic in ``R``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.batched_frontier import (
    BULK_ADVANCE_FRACTION,
    PAIR_ADVANCE_FRACTION,
    PAIR_INDEX_FRACTION,
    BatchedFrontierAggregates,
    RoundDelta,
)
from repro.core.frontier import resolve_engine
from repro.core.neighbor_ops import SparseNeighborOps, gather_neighbors
from repro.core.schedulers import (
    IndependentScheduler,
    ScheduledTwoStateMIS,
    SynchronousScheduler,
)
from repro.core.states import (
    BLACK,
    BLACK0,
    BLACK1,
    GRAY,
    SWITCH_ON_MAX_LEVEL,
    WHITE,
)
from repro.core.switch import RandomizedLogSwitch
from repro.core.three_color import ThreeColorMIS
from repro.core.three_state import ThreeStateMIS
from repro.core.two_state import TwoStateMIS
from repro.core.verify import assert_valid_mis

#: Dispatch table: serial process type → batched engine class.  Filled
#: by :func:`register_engine`; keyed by the *exact* type (subclasses do
#: not inherit batchability — their ``_advance`` may differ).
_ENGINE_DISPATCH: dict[type, type["_BatchedMISEngine"]] = {}


def register_engine(
    engine_cls: type["_BatchedMISEngine"],
) -> type["_BatchedMISEngine"]:
    """Class decorator: register an engine in the dispatch table."""
    _ENGINE_DISPATCH[engine_cls.process_type] = engine_cls
    return engine_cls


def engine_for(process: object) -> type["_BatchedMISEngine"] | None:
    """The batched engine class for ``process``, or ``None``.

    Looks the process's exact type up in the dispatch table, then lets
    the engine veto instances it cannot reproduce bitwise (e.g. a
    3-color process with an :class:`~repro.core.switch.OracleSwitch`, or
    a scheduled process under a single-vertex daemon).
    """
    engine = _ENGINE_DISPATCH.get(type(process))
    if engine is not None and engine.accepts(process):
        return engine
    return None


def batchable(process: object) -> bool:
    """Whether some registered engine can batch ``process``.

    Plain :class:`~repro.core.two_state.TwoStateMIS`,
    :class:`~repro.core.three_state.ThreeStateMIS`,
    :class:`~repro.core.three_color.ThreeColorMIS` (with the randomized
    switch on the same graph) and
    :class:`~repro.core.schedulers.ScheduledTwoStateMIS` (under the
    synchronous or independent daemons) qualify; everything else falls
    back to the serial engine.
    """
    return engine_for(process) is not None


def _stack_block_diag(blocks: list, n: int) -> sp.csr_matrix:
    """Block-diagonal CSR from same-order square CSR blocks.

    Equivalent to ``scipy.sparse.block_diag`` but assembled directly in
    CSR form with numpy concatenation (the scipy helper routes through
    COO and is noticeably slower for many small blocks).
    """
    data = np.concatenate([b.data for b in blocks])
    size = len(blocks) * n
    nnzs = np.array([b.nnz for b in blocks], dtype=np.int64)
    total_nnz = int(nnzs.sum())
    # Index dtype: int32 whenever the flat dimension and nnz fit (the
    # block matvec is memory-bound, so narrow indices halve its index
    # traffic); int64 otherwise — R*n can exceed int32 range for large
    # batches of large graphs, and a wrap would corrupt columns
    # silently.
    idx_t = (
        np.int32
        if size < np.iinfo(np.int32).max
        and total_nnz < np.iinfo(np.int32).max
        else np.int64
    )
    # Per-block offsetting keeps each temporary cache-sized; a fully
    # vectorized repeat-offsets construction benchmarks slower (it
    # materializes an nnz-length offset array and streams it twice).
    indices = np.concatenate(
        [
            b.indices.astype(idx_t, copy=False) + idx_t(i * n)
            for i, b in enumerate(blocks)
        ]
    )
    nnz_offsets = np.concatenate(([0], np.cumsum(nnzs, dtype=np.int64)))
    indptr = np.concatenate(
        [blocks[0].indptr.astype(idx_t, copy=False)]
        + [
            b.indptr[1:].astype(idx_t, copy=False)
            + idx_t(nnz_offsets[i + 1])
            for i, b in enumerate(blocks[1:], 0)
        ]
    )
    # Bypass the (data, indices, indptr) constructor: its check_format
    # pass re-scans every index, an O(nnz) validation of arrays that
    # are correct by construction here.
    out = sp.csr_matrix((size, size), dtype=data.dtype)
    out.data, out.indices, out.indptr = data, indices, indptr
    return out


class _BatchedMISEngine:
    """Shared machinery of the batched engines (see module docs).

    Subclasses set :attr:`process_type` and implement the four-hook
    contract: :meth:`_gather` (adopt per-replica state into ``(R, n)``
    arrays), :meth:`_black_rows` (black mask of selected replicas),
    :meth:`_advance_rows` (one synchronous round for the live replicas,
    drawing each replica's coins from its own source), and
    :meth:`_writeback_states` (sync final states into the wrapped
    processes).  The base class owns the run loop: stabilization
    detection, replica retirement, round budgets, and the shared-graph /
    block-diagonal reduction paths.
    """

    #: Serial process type this engine batches (subclasses override).
    process_type: type | None = None

    #: Whether the engine implements the incremental frontier contract
    #: (delta-reporting ``_advance_rows``); families without it quietly
    #: run the full-reduction loop whatever ``engine=`` says.
    supports_frontier = False

    #: Whether the frontier path maintains a second count matrix
    #: (the 3-state family's black1 indicator).
    track_aux_counts = False

    #: Compact the block-diagonal adjacency once the live fraction of
    #: its rows drops below this threshold.
    _COMPACT_THRESHOLD = 0.5

    @classmethod
    def accepts(cls, process: object) -> bool:
        """Whether this engine can reproduce ``process`` bitwise."""
        return type(process) is cls.process_type

    def __init__(self, processes: Sequence, engine: str = "auto") -> None:
        processes = list(processes)
        if not processes:
            raise ValueError("need at least one process to batch")
        for p in processes:
            if not self.accepts(p):
                raise TypeError(
                    f"{type(self).__name__} cannot batch "
                    f"{type(p).__name__} instances"
                )
        n = processes[0].n
        if any(p.n != n for p in processes):
            raise ValueError("all batched processes must share n")
        self.processes = processes
        self.n = n
        self.engine = resolve_engine(engine)
        self.replicas = len(processes)
        self.shared_graph = all(
            p.graph is processes[0].graph for p in processes
        )
        self._rounds = np.array([p.round for p in processes], dtype=np.int64)
        self._ops = processes[0].ops if self.shared_graph else None
        self._block: sp.csr_matrix | None = None
        self._block_indptr64: np.ndarray | None = None
        self._scratch: np.ndarray | None = None
        self._block_size = 0
        #: Live incremental aggregates while a frontier run is active.
        self._frontier_state: BatchedFrontierAggregates | None = None
        #: Live activity set, when maintained (2-state): as an
        #: ``(L, n)`` boolean mask, or — once small — as a sorted flat
        #: ``row * n + v`` index array.  At most one is non-None.
        self._act_mask: np.ndarray | None = None
        self._act_pairs: np.ndarray | None = None
        #: Post-round live black matrix stashed by frontier-mode
        #: ``_advance_rows`` (global-matrix writes are deferred to
        #: retirement, see :meth:`_on_drop`).
        self._last_new_black: np.ndarray | None = None
        #: Pairs changed by the previous round (the bulk-round signal);
        #: engines stash it whenever a frontier run is active.
        self._changed_count: int | None = None
        #: Set by the run loop when ``_advance_rows`` must report deltas.
        self._collect_delta = False
        #: Reused φ_t buffer (see :meth:`_phi_rows`).
        self._phi_buf: np.ndarray | None = None
        self._phi_scratch: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Subclass contract
    # ------------------------------------------------------------------
    def _gather(self) -> None:
        """Adopt the wrapped processes' state into ``(R, n)`` arrays."""
        raise NotImplementedError

    def _black_rows(self, rows: np.ndarray) -> np.ndarray:
        """Boolean black mask of the selected replicas (``B_t`` rows)."""
        raise NotImplementedError

    def _advance_rows(
        self,
        live: np.ndarray,
        pos: np.ndarray | None,
        black: np.ndarray,
        counts: np.ndarray,
    ) -> "RoundDelta | None":
        """One synchronous round for the ``live`` replicas.

        ``black`` and ``counts`` are the current black mask and
        black-neighbour counts of the live rows (cached from the end of
        the previous round, saving one reduction per round).  Frontier
        engines return the round's :class:`RoundDelta` when
        ``_collect_delta`` is set; the bulk path returns ``None``.
        """
        raise NotImplementedError

    def _writeback_states(self) -> None:
        """Sync final per-replica states into the wrapped processes."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Frontier contract (engines with supports_frontier = True)
    # ------------------------------------------------------------------
    def _aux_rows(self, rows: np.ndarray) -> np.ndarray | None:
        """Auxiliary indicator rows (engines with track_aux_counts)."""
        return None

    def _advance_rows_pairs(
        self, live: np.ndarray, black: np.ndarray, counts: np.ndarray
    ) -> RoundDelta:
        """One round driven off the flat active-pair set (optional).

        Engines that maintain ``_act_mask`` (the 2-state engine)
        override this with an advance that touches only the active
        pairs and the changed edges, mutating ``black`` *in place*.
        """
        raise NotImplementedError

    def _reset_frontier_scratch(self) -> None:
        """Clear per-run frontier-local state (run start and end)."""
        self._act_mask = None
        self._act_pairs = None
        self._changed_count = None
        self._last_new_black = None

    def _pair_round_ready(self, size: int) -> bool:
        """Whether the next round can run on the active-pair set.

        Also manages the activity representation: once the active
        count drops below ``size / PAIR_INDEX_FRACTION`` the boolean
        mask is converted to a sorted flat index array, after which
        the per-round bookkeeping is O(|A_t|) with no length-``L*n``
        scans at all.
        """
        if self._act_pairs is not None:
            return self._act_pairs.size * PAIR_ADVANCE_FRACTION < size
        mask = self._act_mask
        if mask is None:
            return False
        count = int(np.count_nonzero(mask))
        if count * PAIR_ADVANCE_FRACTION >= size:
            return False
        if count * PAIR_INDEX_FRACTION < size:
            self._act_pairs = np.flatnonzero(mask.reshape(-1))
            self._act_mask = None
        return True

    def _seed_act_mask(self, black: np.ndarray, has: np.ndarray) -> None:
        """Seed the activity set after a bulk round (pair engines)."""
        self._act_mask = None
        self._act_pairs = None

    def _sync_act_pairs(
        self,
        black: np.ndarray,
        counts: np.ndarray,
        delta: RoundDelta,
        touched: np.ndarray | None,
    ) -> None:
        """Merge this round's candidates into the activity mask."""
        # Base engines do not maintain an activity mask.

    def _on_drop(
        self, live: np.ndarray, keep: np.ndarray, black: np.ndarray
    ) -> None:
        """Hook before live rows are filtered out (retire / budget).

        Frontier engines defer their per-round writes into the global
        ``(R, n)`` state matrices; this hook syncs the dropped rows'
        final states back (so write-back and ``_writeback_states`` see
        them) and compacts any frontier-local row-aligned state.
        """
        if self._act_mask is not None:
            self._act_mask = self._act_mask[keep]
        elif self._act_pairs is not None:
            n = np.int64(self.n)
            pairs = self._act_pairs
            rows = pairs // n
            keep_pair = keep[rows]
            if not keep_pair.all():
                pairs, rows = pairs[keep_pair], rows[keep_pair]
            new_rows = (np.cumsum(keep, dtype=np.int64) - 1)[rows]
            self._act_pairs = new_rows * n + (pairs - rows * n)

    # ------------------------------------------------------------------
    # Flat (replica, vertex) COO helpers for the frontier aggregates
    # ------------------------------------------------------------------
    def _row_volumes(self, pos: np.ndarray | None) -> np.ndarray:
        """Directed edge volume (2m) of each live replica's graph."""
        if self.shared_graph:
            vol = self.processes[0].graph.indices.shape[0]
            size = self.replicas if pos is None else pos.size
            return np.full(size, vol, dtype=np.int64)
        indptr = self._block_indptr64
        n = np.int64(self.n)
        starts = pos.astype(np.int64) * n
        return indptr[starts + n] - indptr[starts]

    def _inv_pos(self, pos: np.ndarray) -> np.ndarray:
        """Inverse of ``pos``: block row → live row."""
        inv = np.zeros(self._block_size, dtype=np.int64)
        inv[pos] = np.arange(pos.size, dtype=np.int64)
        return inv

    def _pair_degrees(
        self,
        rows: np.ndarray,
        verts: np.ndarray,
        pos: np.ndarray | None,
    ) -> np.ndarray:
        """Degree of each (replica, vertex) pair in its own graph."""
        if self.shared_graph:
            degs = self.processes[0].graph.degrees()
            return degs[verts].astype(np.int64, copy=False)
        indptr = self._block_indptr64
        b = pos[rows].astype(np.int64) * np.int64(self.n) + verts
        return indptr[b + 1] - indptr[b]

    def _flat_targets(
        self,
        rows: np.ndarray,
        verts: np.ndarray,
        pos: np.ndarray | None,
    ) -> np.ndarray:
        """Flat ``live_row * n + u`` neighbour targets of the pairs.

        The concatenated neighbour lists of every (replica, vertex)
        pair, as flat indices into the live ``(L, n)`` matrices — the
        scatter targets of the batched frontier.  Shared-graph path:
        one CSR gather from the shared graph plus per-pair ``r * n``
        offsets.  Block path: the pairs index the block-diagonal CSR
        directly (its columns are already flat ``block_row * n + u``
        indices) and come back remapped through ``pos``'s inverse.
        """
        n = np.int64(self.n)
        if rows.size == 0:
            return np.empty(0, dtype=np.int64)
        if self.shared_graph:
            graph = self.processes[0].graph
            nbrs = gather_neighbors(
                graph.indptr, graph.indices, verts
            ).astype(np.int64, copy=False)
            offsets = np.repeat(
                rows.astype(np.int64) * n, graph.degrees()[verts]
            )
            return nbrs + offsets
        b = pos[rows].astype(np.int64) * n + verts
        targets = gather_neighbors(
            self._block_indptr64, self._block.indices, b
        ).astype(np.int64, copy=False)
        brow = targets // n
        return self._inv_pos(pos)[brow] * n + (targets - brow * n)

    # ------------------------------------------------------------------
    # Batched neighbour reductions
    # ------------------------------------------------------------------
    def _rebuild_block(self, live: np.ndarray) -> None:
        """Compact the block-diagonal adjacency to the ``live`` replicas."""
        self._block = _stack_block_diag(
            [
                self.processes[int(r)].graph.adjacency_csr_int32()
                for r in live
            ],
            self.n,
        )
        self._block_size = live.size
        self._scratch = np.zeros((live.size, self.n), dtype=np.int32)
        # Cached int64 view of the block indptr: the frontier's flat
        # gathers index it with 64-bit pair offsets every round, and an
        # astype per call would copy the whole array each time.
        self._block_indptr64 = self._block.indptr.astype(np.int64)

    def _count_nbrs(
        self, masks: np.ndarray, pos: np.ndarray | None
    ) -> np.ndarray:
        """``out[i, u] = |N(u) ∩ masks[i]|`` for each selected replica.

        ``pos`` maps mask rows to rows of the current block matrix
        (``None`` on the shared-graph path).  Rows of the block not in
        ``pos`` (replicas retired since the last compaction) multiply
        stale state; their counts are discarded by the gather.
        """
        if self.shared_graph:
            return self._ops.count_batch(masks)
        self._scratch[pos] = masks
        counts = self._block.dot(self._scratch.reshape(-1))
        grid = counts.reshape(self._block_size, self.n)
        if pos.size == self._block_size:
            return grid  # pos is the identity permutation; skip the gather
        return grid[pos]

    def _exists_nbrs(
        self, masks: np.ndarray, pos: np.ndarray | None
    ) -> np.ndarray:
        """Batched ``exists``: whether some neighbour is in the mask."""
        return self._count_nbrs(masks, pos) > 0

    def _max_closed_rows(
        self, values: np.ndarray, pos: np.ndarray | None
    ) -> np.ndarray:
        """``out[i, u] = max over N+(u) of values[i, w]`` per replica.

        Shared-graph path: one :meth:`NeighborOps.max_closed_batch`
        call.  Block path: the same level-set probes expressed as
        block-diagonal reductions (values take few distinct levels —
        switch levels 0..5 — so this is a handful of matvecs).
        """
        if self.shared_graph:
            return self._ops.max_closed_batch(values)
        out = values.astype(np.int64).copy()  # self is included in N+.
        # Minimum level skipped (all-True probe, no-op write): one fewer
        # block-diagonal reduction per switch round.
        # reduction-budget: 1
        for level in np.unique(values)[1:]:
            has = self._exists_nbrs(values >= level, pos)
            out[has & (out < level)] = level
        return out

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def _covered_rows(
        self,
        black: np.ndarray,
        counts: np.ndarray,
        pos: np.ndarray | None,
    ) -> np.ndarray:
        """Stabilization predicate ``N+[I_t] = V`` per selected replica.

        ``counts`` are the black-neighbour counts of ``black`` (reused
        from the round's reduction).  The coverage reduction only runs
        for replicas that have stable black vertices at all — a replica
        with ``I_t = ∅`` cannot be covered.
        """
        stable_black = black & (counts == 0)
        candidates = stable_black.any(axis=1)
        covered_all = np.zeros(black.shape[0], dtype=bool)
        if candidates.any():
            sub = np.flatnonzero(candidates)
            nbr_stable = self._count_nbrs(
                stable_black[sub], None if pos is None else pos[sub]
            )
            covered = stable_black[sub] | (nbr_stable > 0)
            covered_all[sub] = covered.all(axis=1)
        if self.n == 0:
            covered_all[:] = True
        return covered_all

    def run(self, max_rounds: int = 1_000_000, verify: bool = True) -> list:
        """Run every replica to stabilization or the round budget.

        Returns a list of :class:`repro.sim.runner.RunResult`, one per
        wrapped process, in input order; the wrapped processes' states
        and round counters are synchronized with the outcome.

        Engines are reusable: each call re-adopts the wrapped
        processes' *current* states and round counters, so a
        fault-injection campaign can corrupt the processes between
        calls and re-run the same engine (the block-diagonal adjacency
        is kept across calls — the graphs are immutable — unless a
        previous run compacted it).

        Parameters
        ----------
        max_rounds:
            Per-replica round budget (counted from the replica's
            current round), as in :func:`repro.sim.runner.run_until_stable`.
        verify:
            Assert each stabilized replica's black set is a valid MIS.
        """
        from repro.sim.runner import RunResult

        if max_rounds < 0:
            raise ValueError("max_rounds must be >= 0")
        results: list[RunResult | None] = [None] * self.replicas
        # Adopt the processes' *current* state (constructors don't:
        # anything may mutate the processes — fault injection, manual
        # steps — between construction and each run).
        self._rounds = np.array(
            [p.round for p in self.processes], dtype=np.int64
        )
        self._gather()
        start_rounds = self._rounds.copy()

        def retire(rows: np.ndarray, black_rows: np.ndarray) -> None:
            if rows.size == 0:
                return
            # One nonzero pass + split serves every retiring replica.
            mis_rows, mis_verts = np.nonzero(black_rows)
            splits = np.split(
                mis_verts,
                np.cumsum(
                    np.bincount(mis_rows, minlength=rows.size),
                    dtype=np.int64,
                )[:-1],
            )
            for i, r in enumerate(rows):
                r = int(r)
                mis = splits[i]
                if verify:
                    assert_valid_mis(self.processes[r].graph, mis)
                elapsed = int(self._rounds[r] - start_rounds[r])
                results[r] = RunResult(
                    stabilized=True,
                    stabilization_round=elapsed,
                    rounds_executed=elapsed,
                    mis=mis,
                )

        live = np.arange(self.replicas, dtype=np.int64)
        pos: np.ndarray | None = None
        if not self.shared_graph:
            if self._block is None or self._block_size != self.replicas:
                self._rebuild_block(live)
            pos = np.arange(self.replicas, dtype=np.int64)
        black = self._black_rows(live)
        frontier: BatchedFrontierAggregates | None = None
        self._reset_frontier_scratch()
        # ``auto`` only engages the frontier where scatter can win: the
        # block-diagonal path, or a shared graph on the CSR backend.
        # Against the dense/bitset matmul backends (small or dense
        # graphs) a full reduction is a near-free BLAS call and the
        # incremental bookkeeping only adds overhead.  An explicit
        # ``engine="frontier"`` overrides the heuristic.
        engage = self.engine == "frontier" or (
            self.engine == "auto"
            and (
                not self.shared_graph
                or isinstance(self._ops, SparseNeighborOps)
            )
        )
        if engage and self.supports_frontier:
            frontier = BatchedFrontierAggregates(
                self,
                adaptive=(self.engine == "auto"),
                track_aux=self.track_aux_counts,
            )
            frontier.rebuild(black, pos, aux_mask=self._aux_rows(live))
            # In frontier mode the loop's `counts` variable carries the
            # materialized ``counts > 0`` boolean (what the update
            # rules consume); the integer matrix lives in the
            # aggregates and is only touched by the scatter paths.
            counts = frontier.has
            self._frontier_state = frontier
            # Seed the activity set from the initial aggregates: a
            # fleet that starts near-stable (the self-stabilization
            # recovery shape) then rides pair rounds from round 1.
            self._seed_act_mask(black, counts)
            covered = frontier.unstable == 0
        else:
            counts = self._count_nbrs(black, pos)
            covered = self._covered_rows(black, counts, pos)

        def drop(keep: np.ndarray) -> None:
            nonlocal live, black, counts, pos
            self._on_drop(live, keep, black)
            live, black = live[keep], black[keep]
            if frontier is not None:
                frontier.filter(keep)
                counts = frontier.has
            else:
                counts = counts[keep]
            if pos is not None:
                pos = pos[keep]

        def maybe_compact() -> None:
            # The frontier path leaves the block uncompacted: its
            # scatter gathers index only live rows' CSR runs, so stale
            # rows cost nothing per round, while a rebuild costs a full
            # re-stack (bulk rounds, which do pay for stale rows in
            # their block matvec, happen before anything retires).
            nonlocal pos
            if (
                pos is not None
                and frontier is None
                and 0 < live.size < self._COMPACT_THRESHOLD * self._block_size
            ):
                self._rebuild_block(live)
                pos = np.arange(live.size, dtype=np.int64)

        retire(live[covered], black[covered])
        if covered.any():
            drop(~covered)
            maybe_compact()

        # Per round: one count + one coverage reduction on the
        # non-frontier path; the frontier path replaces both with
        # scatter updates (its reductions live in the engine).
        # reduction-budget: 2
        while live.size:
            executed = self._rounds[live] - start_rounds[live]
            in_budget = executed < max_rounds
            if not in_budget.all():
                for r in live[~in_budget]:
                    results[int(r)] = RunResult(
                        stabilized=False,
                        stabilization_round=None,
                        rounds_executed=int(max_rounds),
                        mis=None,
                    )
                drop(in_budget)
                if not live.size:
                    break

            # One synchronous round; the cached `black`/`counts` are the
            # mask and black-neighbour counts of the current configuration.
            if frontier is not None:
                if self._pair_round_ready(black.size):
                    # Tail regime: advance on the flat active pairs
                    # (`black` is updated in place, no re-gather).
                    delta = self._advance_rows_pairs(live, black, counts)  # repro-lint: disable=coin-flow (pair regime draws the identical per-replica φ_t)
                    self._rounds[live] += 1
                    touched = frontier.advance(black, delta, pos)
                    counts = frontier.has
                    self._sync_act_pairs(black, counts, delta, touched)
                elif self.engine == "auto" and (
                    self._changed_count is None
                    or self._changed_count * BULK_ADVANCE_FRACTION
                    > black.size
                ):
                    # Bulk regime: a large fraction of all pairs moved
                    # last round — recompute the counts with one
                    # reduction per indicator instead of extracting
                    # and scattering the changed pairs.
                    self._advance_rows(live, pos, black, counts)  # repro-lint: disable=coin-flow (every regime draws the identical per-replica φ_t)
                    self._rounds[live] += 1
                    black = self._last_new_black
                    frontier.full_round(
                        black, pos, aux_mask=self._aux_rows(live)
                    )
                    counts = frontier.has
                    self._seed_act_mask(black, counts)
                else:
                    self._collect_delta = True
                    try:
                        delta = self._advance_rows(live, pos, black, counts)  # repro-lint: disable=coin-flow (every regime draws the identical per-replica φ_t)
                    finally:
                        self._collect_delta = False
                    black = self._last_new_black
                    self._rounds[live] += 1
                    touched = frontier.advance(black, delta, pos)
                    counts = frontier.has
                    self._sync_act_pairs(black, counts, delta, touched)
                covered = frontier.unstable == 0
            else:
                self._advance_rows(live, pos, black, counts)  # repro-lint: disable=coin-flow (every regime draws the identical per-replica φ_t)
                self._rounds[live] += 1
                black = self._black_rows(live)
                counts = self._count_nbrs(black, pos)
                covered = self._covered_rows(black, counts, pos)

            if covered.any():
                retire(live[covered], black[covered])
                drop(~covered)
                maybe_compact()

        self._frontier_state = None
        self._reset_frontier_scratch()
        self._writeback()
        return results

    def _phi_rows(self, live: np.ndarray) -> np.ndarray:
        """One ``bits(n)`` draw per live replica, in replica order.

        The returned matrix is a view into a per-engine buffer reused
        across rounds (φ_t is consumed within its round everywhere);
        each draw lands in its row via :meth:`CoinSource.bits_into`,
        skipping two allocations per replica per round.
        """
        if self._phi_buf is None or self._phi_buf.shape[0] < live.size:
            self._phi_buf = np.empty((live.size, self.n), dtype=bool)
            self._phi_scratch = np.empty(self.n, dtype=np.float64)
        phi = self._phi_buf[: live.size]
        scratch = self._phi_scratch
        processes = self.processes
        for i, r in enumerate(live):
            processes[r].coins.bits_into(phi[i], scratch)
        return phi

    def _writeback(self) -> None:
        """Sync final states and round counters into the wrapped processes."""
        self._writeback_states()
        for r, process in enumerate(self.processes):
            process.round = int(self._rounds[r])

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(replicas={self.replicas}, n={self.n}, "
            f"shared_graph={self.shared_graph})"
        )


class _BlackStateEngine(_BatchedMISEngine):
    """Shared machinery for engines whose full state is one black mask
    (the plain and scheduled 2-state engines): the ``_black`` matrix
    adoption/write-back and the frontier round epilogue."""

    def _black_rows(self, rows: np.ndarray) -> np.ndarray:
        return self._black[rows]

    def _finish_black_advance(
        self,
        live: np.ndarray,
        black: np.ndarray,
        new_black: np.ndarray,
    ) -> tuple[RoundDelta | None, np.ndarray | None]:
        """Deferred-write epilogue of one black-mask round.

        Full mode writes the global matrix; frontier mode stashes the
        live matrix, records the bulk-round signal, and (when the loop
        asked for it) extracts the changed pairs.  Returns
        ``(delta_or_None, changed_mask_or_None)``.
        """
        if self._frontier_state is None:
            self._black[live] = new_black
            return None, None
        self._last_new_black = new_black
        changed_mask = new_black != black
        self._changed_count = int(np.count_nonzero(changed_mask))
        if not self._collect_delta:
            return None, changed_mask
        rows, verts = np.nonzero(changed_mask)
        vals = new_black[rows, verts]
        return (
            RoundDelta(rows[vals], verts[vals], rows[~vals], verts[~vals]),
            changed_mask,
        )

    def _on_drop(
        self, live: np.ndarray, keep: np.ndarray, black: np.ndarray
    ) -> None:
        if self._frontier_state is not None:
            out = ~keep
            if out.any():
                self._black[live[out]] = black[out]
        super()._on_drop(live, keep, black)

    def _writeback_states(self) -> None:
        for r, process in enumerate(self.processes):
            process.black = self._black[r].copy()


@register_engine
class BatchedTwoStateMIS(_BlackStateEngine):
    """``R`` independent 2-state MIS replicas advanced in lockstep.

    Parameters
    ----------
    processes:
        Non-empty sequence of :class:`~repro.core.two_state.TwoStateMIS`
        instances, all on graphs with the same vertex count ``n``.  The
        engine adopts each process's current state and coin source;
        after :meth:`run` the final states and round counters are
        written back, so the wrapped processes end up exactly as if they
        had been run serially.

    Notes
    -----
    Construct the processes first (their constructors consume the
    initial-state coin draws), then batch them.  The convenience entry
    points are :func:`repro.sim.runner.run_many_until_stable` and
    :func:`repro.sim.montecarlo.estimate_stabilization_time`
    (``batch="auto"``), which handle grouping and serial fallback.
    """

    process_type = TwoStateMIS
    supports_frontier = True

    def _gather(self) -> None:
        self._black = np.stack([p.black for p in self.processes])
        self._eager = np.array(
            [p.eager_white_promotion for p in self.processes], dtype=bool
        )
        #: Pair rounds assume the plain activity rule; any eager
        #: (footnote-1 ablation) replica in the batch vetoes them.
        self._pair_capable = not bool(self._eager.any())

    def _seed_act_mask(self, black: np.ndarray, has: np.ndarray) -> None:
        self._act_pairs = None
        if self._pair_capable:
            self._act_mask = black == has  # elementwise XNOR
        else:
            self._act_mask = None

    def _advance_rows(
        self,
        live: np.ndarray,
        pos: np.ndarray | None,
        black: np.ndarray,
        counts: np.ndarray,
    ) -> RoundDelta | None:
        # A_t = (black & has) | (~black & ~has), i.e. elementwise XNOR
        # (`counts` is the materialized boolean hint in frontier mode).
        has = counts if counts.dtype == np.bool_ else counts > 0
        active = black == has
        phi = self._phi_rows(live)
        eager = self._eager[live]
        any_eager = bool(eager.any())
        if any_eager:
            # Ablation replicas: active white vertices promote with
            # probability 1 (their coin is drawn but ignored).
            promote = active & ~black & eager[:, None]
            new_black = np.where(active, phi, black) | promote
        else:
            new_black = np.where(active, phi, black)
        delta, changed_mask = self._finish_black_advance(
            live, black, new_black
        )
        if delta is not None:
            # Seed the activity mask for the pair regime; eager
            # replicas veto it (their activity rule differs).
            self._act_pairs = None
            if self._pair_capable:
                self._act_mask = active & ~changed_mask
            else:
                self._act_mask = None
        return delta

    def _advance_rows_pairs(
        self, live: np.ndarray, black: np.ndarray, counts: np.ndarray
    ) -> RoundDelta:
        """One round touching only A_t and the changed pairs.

        Trajectory-identical to the mask path: φ_t is still one full
        ``bits(n)`` draw per replica (§2.1's coin discipline), but it
        is only read at the active pairs, and every update is
        index-based — the batched analogue of the serial
        ``TwoStateMIS._advance_on_active_idx``.
        """
        n = np.int64(self.n)
        if self._act_pairs is not None:
            act = self._act_pairs
        else:
            act = np.flatnonzero(self._act_mask.reshape(-1))
        phi = self._phi_rows(live)
        black_flat = black.reshape(-1)
        flips = phi.reshape(-1)[act] ^ black_flat[act]
        changed = act[flips]
        rows = changed // n
        verts = changed - rows * n
        new_vals = ~black_flat[changed]
        black_flat[changed] = new_vals
        if self._act_pairs is not None:
            self._act_pairs = act[~flips]
        self._changed_count = int(changed.size)
        return RoundDelta(
            rows[new_vals], verts[new_vals], rows[~new_vals], verts[~new_vals]
        )

    def _sync_act_pairs(
        self,
        black: np.ndarray,
        counts: np.ndarray,
        delta: RoundDelta,
        touched: np.ndarray | None,
    ) -> None:
        if touched is None:
            self._act_mask = None
            self._act_pairs = None
            return
        n = np.int64(self.n)
        candidates = np.concatenate(
            (
                delta.up_rows * n + delta.up_verts,
                delta.down_rows * n + delta.down_verts,
                touched,
            )
        )
        # A_t flips only where blackness or has_black changed, so the
        # update touches the candidate pairs only (`counts` is the
        # boolean has-black hint here).
        act_at = (
            black.reshape(-1)[candidates]
            == counts.reshape(-1)[candidates]
        )
        if self._act_pairs is not None:
            idx = self._act_pairs
            deactivated = candidates[~act_at]
            activated = candidates[act_at]
            if deactivated.size:
                idx = np.setdiff1d(idx, deactivated)
            if activated.size:
                idx = np.union1d(idx, activated)
            if idx.size * PAIR_INDEX_FRACTION >= black.size:
                # Index regime left: widen back to the boolean mask.
                mask = np.zeros(black.size, dtype=bool)
                mask[idx] = True
                self._act_mask = mask.reshape(black.shape)
                self._act_pairs = None
            else:
                self._act_pairs = idx
        elif self._act_mask is not None:
            self._act_mask.reshape(-1)[candidates] = act_at

@register_engine
class BatchedThreeStateMIS(_BatchedMISEngine):
    """``R`` independent 3-state MIS replicas advanced in lockstep.

    The state matrix is int8 over {WHITE, BLACK0, BLACK1}; each round
    costs two batched ``exists`` reductions (black neighbours — reused
    from the stabilization check — and black1 neighbours) plus one
    ``bits(n)`` draw per replica, exactly mirroring
    :meth:`repro.core.three_state.ThreeStateMIS._advance`.
    """

    process_type = ThreeStateMIS
    supports_frontier = True
    track_aux_counts = True

    def _gather(self) -> None:
        self._states = np.stack([p.states for p in self.processes])
        #: Live states matrix while a frontier run defers global writes.
        self._live_states: np.ndarray | None = None

    def _reset_frontier_scratch(self) -> None:
        super()._reset_frontier_scratch()
        self._live_states = None

    def _black_rows(self, rows: np.ndarray) -> np.ndarray:
        return self._states[rows] != WHITE

    def _aux_rows(self, rows: np.ndarray) -> np.ndarray:
        if self._live_states is not None:
            return self._live_states == BLACK1
        return self._states[rows] == BLACK1

    def _on_drop(
        self, live: np.ndarray, keep: np.ndarray, black: np.ndarray
    ) -> None:
        if self._live_states is not None:
            out = ~keep
            if out.any():
                self._states[live[out]] = self._live_states[out]
            self._live_states = self._live_states[keep]
        super()._on_drop(live, keep, black)

    def _advance_rows(
        self,
        live: np.ndarray,
        pos: np.ndarray | None,
        black: np.ndarray,
        counts: np.ndarray,
    ) -> RoundDelta | None:
        if self._live_states is not None:
            states = self._live_states
        else:
            states = self._states[live]
        is_black1 = states == BLACK1
        is_black0 = states == BLACK0
        is_white = states == WHITE
        if self._frontier_state is not None:
            has_black1_nbr = self._frontier_state.aux_has
        else:
            has_black1_nbr = self._exists_nbrs(is_black1, pos)
        has_black_nbr = (
            counts if counts.dtype == np.bool_ else counts > 0
        )
        randomize = (
            is_black1
            | (is_black0 & ~has_black1_nbr)
            | (is_white & ~has_black_nbr)
        )
        demote = is_black0 & ~randomize  # black0 hearing a black1 beep
        phi = self._phi_rows(live)
        new_states = states.copy()
        new_states[randomize & phi] = BLACK1
        new_states[randomize & ~phi] = BLACK0
        new_states[demote] = WHITE
        if self._frontier_state is None:
            self._states[live] = new_states
            return None
        # Frontier mode: defer the global-matrix write to retirement.
        self._live_states = new_states
        self._last_new_black = new_states != WHITE
        changed_mask = new_states != states
        self._changed_count = int(np.count_nonzero(changed_mask))
        if not self._collect_delta:
            return None
        rows, verts = np.nonzero(changed_mask)
        old = states[rows, verts]
        new = new_states[rows, verts]
        old_black = old != WHITE
        new_black = new != WHITE
        old_b1 = old == BLACK1
        new_b1 = new == BLACK1
        up = new_black & ~old_black
        down = old_black & ~new_black
        aux_up = new_b1 & ~old_b1
        aux_down = old_b1 & ~new_b1
        return RoundDelta(
            rows[up],
            verts[up],
            rows[down],
            verts[down],
            aux_up_rows=rows[aux_up],
            aux_up_verts=verts[aux_up],
            aux_down_rows=rows[aux_down],
            aux_down_verts=verts[aux_down],
            aux_mask=new_states == BLACK1,
        )

    def _writeback_states(self) -> None:
        for r, process in enumerate(self.processes):
            process.states = self._states[r].copy()


@register_engine
class BatchedThreeColorMIS(_BatchedMISEngine):
    """``R`` independent 3-color MIS replicas advanced in lockstep.

    Batches the color matrix *and* the per-replica
    :class:`~repro.core.switch.RandomizedLogSwitch` levels: the switch
    update's ``max over N+(u)`` diffusion runs as one
    :meth:`~repro.core.neighbor_ops.NeighborOps.max_closed_batch`
    aggregate over the ``(R, n)`` level matrix.  Per replica and per
    round the coin order is Definition 28's: the main process draws
    φ_t = ``bits(n)`` first, then the switch draws ``bernoulli(n, ζ)``
    — and the color update reads σ_{t-1} (the levels *before* the
    switch advances).

    Only processes whose switch is a plain ``RandomizedLogSwitch`` on
    the same graph are accepted (:class:`~repro.core.switch.OracleSwitch`
    and cross-graph switches fall back to the serial engine); ζ may
    differ between replicas.
    """

    process_type = ThreeColorMIS

    @classmethod
    def accepts(cls, process: object) -> bool:
        return (
            type(process) is ThreeColorMIS
            and type(process.switch) is RandomizedLogSwitch
            and process.switch.graph is process.graph
        )

    def _gather(self) -> None:
        self._colors = np.stack([p.colors for p in self.processes])
        self._levels = np.stack([p.switch.levels for p in self.processes])
        self._switch_rounds = np.array(
            [p.switch.round for p in self.processes], dtype=np.int64
        )

    def _black_rows(self, rows: np.ndarray) -> np.ndarray:
        return self._colors[rows] == BLACK

    def _advance_rows(
        self,
        live: np.ndarray,
        pos: np.ndarray | None,
        black: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        colors = self._colors[live]
        levels = self._levels[live]
        white = colors == WHITE
        gray = colors == GRAY
        has_black_nbr = counts > 0
        sigma = levels <= SWITCH_ON_MAX_LEVEL  # σ_{t-1}

        conflicted_black = black & has_black_nbr
        lonely_white = white & ~has_black_nbr
        waking_gray = gray & sigma

        phi = self._phi_rows(live)
        new_colors = colors.copy()
        # Conflicted black → coin ? black : gray.
        new_colors[conflicted_black & ~phi] = GRAY
        # Lonely white → coin ? black : white.
        new_colors[lonely_white & phi] = BLACK
        # Gray with switch on → white.
        new_colors[waking_gray] = WHITE
        self._colors[live] = new_colors

        # Switch step (Definition 26), after the main φ_t draws.
        at_five = levels == 5
        at_zero = levels == 0
        b_zero = np.empty((live.size, self.n), dtype=bool)
        for i, r in enumerate(live):
            switch = self.processes[r].switch
            b_zero[i] = switch.coins.bernoulli(self.n, switch.zeta)
        stay_five = at_five & ~b_zero  # b = 1 → remain at level 5
        reset_to_five = stay_five | at_zero
        nbr_max = self._max_closed_rows(levels, pos)
        self._levels[live] = np.where(
            reset_to_five, 5, np.maximum(nbr_max - 1, 0)
        ).astype(np.int8)
        self._switch_rounds[live] += 1

    def _writeback_states(self) -> None:
        for r, process in enumerate(self.processes):
            process.colors = self._colors[r].copy()
            process.switch.levels = self._levels[r].copy()
            process.switch.round = int(self._switch_rounds[r])


@register_engine
class BatchedScheduledTwoStateMIS(_BlackStateEngine):
    """``R`` independent scheduled 2-state replicas advanced in lockstep.

    Supports the coin-free :class:`~repro.core.schedulers.SynchronousScheduler`
    and the :class:`~repro.core.schedulers.IndependentScheduler` daemon
    (one ``bernoulli(n, q)`` activation mask per replica per round,
    drawn *before* the replica's φ_t — the serial coin order).  The
    single-vertex daemons are state-dependent and stay on the serial
    path; ``q`` may differ between replicas.
    """

    process_type = ScheduledTwoStateMIS
    supports_frontier = True

    @classmethod
    def accepts(cls, process: object) -> bool:
        return type(process) is ScheduledTwoStateMIS and type(
            process.scheduler
        ) in (SynchronousScheduler, IndependentScheduler)

    def _gather(self) -> None:
        self._black = np.stack([p.black for p in self.processes])
        # q per replica; NaN marks the synchronous (draw-free) daemon.
        self._q = np.array(
            [
                p.scheduler.q
                if isinstance(p.scheduler, IndependentScheduler)
                else np.nan
                for p in self.processes
            ],
            dtype=np.float64,
        )

    def _advance_rows(
        self,
        live: np.ndarray,
        pos: np.ndarray | None,
        black: np.ndarray,
        counts: np.ndarray,
    ) -> RoundDelta | None:
        selected = np.ones((live.size, self.n), dtype=bool)
        for i, r in enumerate(live):
            q = self._q[r]
            if not np.isnan(q):
                selected[i] = self.processes[r].coins.bernoulli(self.n, q)
        has = counts if counts.dtype == np.bool_ else counts > 0
        rule_enabled = black == has  # elementwise XNOR
        active = rule_enabled & selected
        phi = self._phi_rows(live)
        new_black = black.copy()
        new_black[active] = phi[active]
        delta, _ = self._finish_black_advance(live, black, new_black)
        return delta
