"""Batched trial engine for the 2-state MIS process.

Monte-Carlo validation of the paper's w.h.p. stabilization bounds needs
hundreds of independent trials per parameter point.  Running those
trials one process at a time wastes the hardware: every round of every
trial is a tiny matrix product plus Python overhead.  This module
simulates ``R`` independent replicas of :class:`~repro.core.two_state.TwoStateMIS`
as a single ``(R, n)`` boolean state matrix with *one* vectorized
neighbour reduction per round (see
:meth:`repro.core.neighbor_ops.NeighborOps.count_batch`), while keeping
every replica bitwise-identical to the serial process it wraps.

Equivalence contract
--------------------

Each replica keeps its *own* :class:`~repro.sim.rng.CoinSource` and
draws exactly one ``bits(n)`` array per simulated round, in the same
order as the serial engine (§2.1's φ_t discipline).  Neighbour counts
are exact integer aggregates, so the trajectory of replica ``r`` is
bitwise-identical to running ``processes[r]`` through
:func:`repro.sim.runner.run_until_stable` with the same seed — the
equivalence tests in ``tests/test_batched.py`` pin this.

Replicas *retire* from the batch as they stabilize (or exhaust the
round budget): a stabilized replica stops consuming coins and stops
occupying rows of the live state matrix, exactly as a serial trial
would stop running.

Graph sharing
-------------

* If all replicas observe the *same* :class:`~repro.graphs.graph.Graph`
  object, the reduction is one ``(R, n) × (n, n)`` product against that
  graph's backend.
* Otherwise (e.g. G(n, p) experiments that resample the graph per
  trial), the replicas' adjacencies are stacked into one block-diagonal
  CSR matrix and the reduction is a single sparse matvec over the
  concatenated state vector.  The block matrix is rebuilt (compacted to
  the live replicas) only once at least half its rows have retired, so
  total rebuild cost is amortized logarithmic in ``R``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.two_state import TwoStateMIS
from repro.core.verify import assert_valid_mis


def batchable(process: object) -> bool:
    """Whether ``process`` can join a :class:`BatchedTwoStateMIS` batch.

    Exactly the plain synchronous 2-state process qualifies; subclasses,
    scheduled wrappers (:class:`~repro.core.schedulers.ScheduledTwoStateMIS`)
    and the 3-state/3-color processes fall back to the serial engine.
    """
    return type(process) is TwoStateMIS


def _stack_block_diag(blocks: list, n: int) -> sp.csr_matrix:
    """Block-diagonal CSR from same-order square CSR blocks.

    Equivalent to ``scipy.sparse.block_diag`` but assembled directly in
    CSR form with numpy concatenation (the scipy helper routes through
    COO and is noticeably slower for many small blocks).
    """
    data = np.concatenate([b.data for b in blocks])
    # Offsets in int64: R*n can exceed int32 range for large batches of
    # large graphs, and an int32 wrap would corrupt columns silently.
    indices = np.concatenate(
        [b.indices.astype(np.int64) + i * n for i, b in enumerate(blocks)]
    )
    nnz_offsets = np.cumsum([0] + [b.nnz for b in blocks], dtype=np.int64)
    indptr = np.concatenate(
        [blocks[0].indptr.astype(np.int64)]
        + [
            b.indptr[1:].astype(np.int64) + nnz_offsets[i + 1]
            for i, b in enumerate(blocks[1:], 0)
        ]
    )
    size = len(blocks) * n
    return sp.csr_matrix((data, indices, indptr), shape=(size, size))


class BatchedTwoStateMIS:
    """``R`` independent 2-state MIS replicas advanced in lockstep.

    Parameters
    ----------
    processes:
        Non-empty sequence of :class:`~repro.core.two_state.TwoStateMIS`
        instances, all on graphs with the same vertex count ``n``.  The
        engine adopts each process's current state and coin source;
        after :meth:`run` the final states and round counters are
        written back, so the wrapped processes end up exactly as if they
        had been run serially.

    Notes
    -----
    Construct the processes first (their constructors consume the
    initial-state coin draws), then batch them.  The convenience entry
    points are :func:`repro.sim.runner.run_many_until_stable` and
    :func:`repro.sim.montecarlo.estimate_stabilization_time`
    (``batch="auto"``), which handle grouping and serial fallback.
    """

    #: Compact the block-diagonal adjacency once the live fraction of
    #: its rows drops below this threshold.
    _COMPACT_THRESHOLD = 0.5

    def __init__(self, processes: Sequence[TwoStateMIS]) -> None:
        processes = list(processes)
        if not processes:
            raise ValueError("need at least one process to batch")
        for p in processes:
            if not batchable(p):
                raise TypeError(
                    f"cannot batch {type(p).__name__}; only plain "
                    "TwoStateMIS processes are batchable"
                )
        n = processes[0].n
        if any(p.n != n for p in processes):
            raise ValueError("all batched processes must share n")
        self.processes = processes
        self.n = n
        self.replicas = len(processes)
        self.shared_graph = all(
            p.graph is processes[0].graph for p in processes
        )
        self._black = np.stack([p.black for p in processes])
        self._eager = np.array(
            [p.eager_white_promotion for p in processes], dtype=bool
        )
        self._rounds = np.array([p.round for p in processes], dtype=np.int64)
        self._ops = processes[0].ops if self.shared_graph else None
        self._block: sp.csr_matrix | None = None
        self._scratch: np.ndarray | None = None
        self._block_size = 0

    # ------------------------------------------------------------------
    # Batched neighbour reduction
    # ------------------------------------------------------------------
    def _rebuild_block(self, live: np.ndarray) -> None:
        """Compact the block-diagonal adjacency to the ``live`` replicas."""
        self._block = _stack_block_diag(
            [
                self.processes[int(r)].graph.adjacency_csr().astype(np.int32)
                for r in live
            ],
            self.n,
        )
        self._block_size = live.size
        self._scratch = np.zeros((live.size, self.n), dtype=np.int32)

    def _count_black_nbrs(
        self, masks: np.ndarray, pos: np.ndarray | None
    ) -> np.ndarray:
        """``out[i, u] = |N(u) ∩ masks[i]|`` for each selected replica.

        ``pos`` maps mask rows to rows of the current block matrix
        (``None`` on the shared-graph path).  Rows of the block not in
        ``pos`` (replicas retired since the last compaction) multiply
        stale state; their counts are discarded by the gather.
        """
        if self.shared_graph:
            return self._ops.count_batch(masks)
        self._scratch[pos] = masks
        counts = self._block.dot(self._scratch.reshape(-1))
        return counts.reshape(self._block_size, self.n)[pos]

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def _covered_rows(
        self,
        black: np.ndarray,
        counts: np.ndarray,
        pos: np.ndarray | None,
    ) -> np.ndarray:
        """Stabilization predicate ``N+[I_t] = V`` per selected replica.

        ``counts`` are the black-neighbour counts of ``black`` (reused
        from the round's reduction).  The coverage reduction only runs
        for replicas that have stable black vertices at all — a replica
        with ``I_t = ∅`` cannot be covered.
        """
        stable_black = black & (counts == 0)
        candidates = stable_black.any(axis=1)
        covered_all = np.zeros(black.shape[0], dtype=bool)
        if candidates.any():
            sub = np.flatnonzero(candidates)
            nbr_stable = self._count_black_nbrs(
                stable_black[sub], None if pos is None else pos[sub]
            )
            covered = stable_black[sub] | (nbr_stable > 0)
            covered_all[sub] = covered.all(axis=1)
        if self.n == 0:
            covered_all[:] = True
        return covered_all

    def run(self, max_rounds: int = 1_000_000, verify: bool = True) -> list:
        """Run every replica to stabilization or the round budget.

        Returns a list of :class:`repro.sim.runner.RunResult`, one per
        wrapped process, in input order; the wrapped processes' states
        and round counters are synchronized with the outcome.

        Parameters
        ----------
        max_rounds:
            Per-replica round budget (counted from the replica's
            current round), as in :func:`repro.sim.runner.run_until_stable`.
        verify:
            Assert each stabilized replica's black set is a valid MIS.
        """
        from repro.sim.runner import RunResult

        if max_rounds < 0:
            raise ValueError("max_rounds must be >= 0")
        results: list[RunResult | None] = [None] * self.replicas
        start_rounds = self._rounds.copy()

        def retire(rows: np.ndarray) -> None:
            for r in rows:
                r = int(r)
                mis = np.flatnonzero(self._black[r])
                if verify:
                    assert_valid_mis(self.processes[r].graph, mis)
                elapsed = int(self._rounds[r] - start_rounds[r])
                results[r] = RunResult(
                    stabilized=True,
                    stabilization_round=elapsed,
                    rounds_executed=elapsed,
                    mis=mis,
                )

        live = np.arange(self.replicas)
        pos: np.ndarray | None = None
        if not self.shared_graph:
            self._rebuild_block(live)
            pos = np.arange(self.replicas)
        black = self._black[live]
        counts = self._count_black_nbrs(black, pos)
        covered = self._covered_rows(black, counts, pos)
        retire(live[covered])
        keep = ~covered
        live, black, counts = live[keep], black[keep], counts[keep]
        if pos is not None:
            pos = pos[keep]

        while live.size:
            executed = self._rounds[live] - start_rounds[live]
            in_budget = executed < max_rounds
            if not in_budget.all():
                for r in live[~in_budget]:
                    results[int(r)] = RunResult(
                        stabilized=False,
                        stabilization_round=None,
                        rounds_executed=int(max_rounds),
                        mis=None,
                    )
                live, black, counts = (
                    live[in_budget],
                    black[in_budget],
                    counts[in_budget],
                )
                if pos is not None:
                    pos = pos[in_budget]
                if not live.size:
                    break

            # One synchronous round; the cached `counts` are the
            # black-neighbour counts of the current configuration.
            has_black_nbr = counts > 0
            active = np.where(black, has_black_nbr, ~has_black_nbr)
            phi = np.empty_like(black)
            for i, r in enumerate(live):
                phi[i] = self.processes[r].coins.bits(self.n)
            eager = self._eager[live]
            if eager.any():
                # Ablation replicas: active white vertices promote with
                # probability 1 (their coin is drawn but ignored).
                promote = active & ~black & eager[:, None]
                black = np.where(active, phi, black) | promote
            else:
                black = np.where(active, phi, black)
            self._black[live] = black
            self._rounds[live] += 1

            counts = self._count_black_nbrs(black, pos)
            covered = self._covered_rows(black, counts, pos)
            retire(live[covered])
            keep = ~covered
            live, black, counts = live[keep], black[keep], counts[keep]
            if pos is not None:
                pos = pos[keep]
                if 0 < live.size < self._COMPACT_THRESHOLD * self._block_size:
                    self._rebuild_block(live)
                    pos = np.arange(live.size)

        self._writeback()
        return results

    def _writeback(self) -> None:
        """Sync final states and round counters into the wrapped processes."""
        for r, process in enumerate(self.processes):
            process.black = self._black[r].copy()
            process.round = int(self._rounds[r])

    def __repr__(self) -> str:
        return (
            f"BatchedTwoStateMIS(replicas={self.replicas}, n={self.n}, "
            f"shared_graph={self.shared_graph})"
        )
