"""Batched trial engines for the paper's MIS process families.

Monte-Carlo validation of the paper's w.h.p. stabilization bounds needs
hundreds of independent trials per parameter point.  Running those
trials one process at a time wastes the hardware: every round of every
trial is a tiny matrix product plus Python overhead.  This module
simulates ``R`` independent replicas of a process family as a single
``(R, n)`` state matrix with a handful of vectorized neighbour
reductions per round (see
:meth:`repro.core.neighbor_ops.NeighborOps.count_batch` /
:meth:`~repro.core.neighbor_ops.NeighborOps.max_closed_batch`), while
keeping every replica bitwise-identical to the serial process it wraps.

Engine family
-------------

One engine per batchable process family, all sharing the run loop,
replica retirement and block-compaction machinery of
:class:`_BatchedMISEngine`:

* :class:`BatchedTwoStateMIS` — plain :class:`~repro.core.two_state.TwoStateMIS`
  (boolean state matrix, one ``count_batch`` per round);
* :class:`BatchedThreeStateMIS` — :class:`~repro.core.three_state.ThreeStateMIS`
  (int8 state matrix, two batched ``exists`` reductions per round);
* :class:`BatchedThreeColorMIS` — :class:`~repro.core.three_color.ThreeColorMIS`
  with the randomized logarithmic switch (colors plus a batched
  :class:`~repro.core.switch.RandomizedLogSwitch`, levels advancing in
  lockstep with Definition 28's coin order);
* :class:`BatchedScheduledTwoStateMIS` —
  :class:`~repro.core.schedulers.ScheduledTwoStateMIS` under the
  synchronous or independent-participation daemons (per-replica
  Bernoulli activation masks).

The :data:`dispatch table <_ENGINE_DISPATCH>` maps serial process types
to engines; :func:`engine_for` / :func:`batchable` are the lookups used
by :func:`repro.sim.runner.run_many_until_stable` and
:func:`repro.sim.montecarlo.estimate_stabilization_time` to group
processes by engine (no hardcoded type checks).

Equivalence contract
--------------------

Each replica keeps its *own* :class:`~repro.sim.rng.CoinSource` and
draws exactly the arrays its serial counterpart would, in the same
per-replica order (§2.1's φ_t discipline; for the 3-color process the
main φ_t draw precedes the switch's Bernoulli draw, and for scheduled
processes the daemon's draw precedes φ_t).  Neighbour aggregates are
exact integer reductions, so the trajectory of replica ``r`` is
bitwise-identical to running ``processes[r]`` through
:func:`repro.sim.runner.run_until_stable` with the same seed — the
equivalence tests in ``tests/test_batched.py`` and
``tests/test_batched_families.py`` pin this.

Replicas *retire* from the batch as they stabilize (or exhaust the
round budget): a stabilized replica stops consuming coins and stops
occupying rows of the live state matrix, exactly as a serial trial
would stop running.

Graph sharing
-------------

* If all replicas observe the *same* :class:`~repro.graphs.graph.Graph`
  object, each reduction is one ``(R, n) × (n, n)`` product against
  that graph's backend.
* Otherwise (e.g. G(n, p) experiments that resample the graph per
  trial), the replicas' adjacencies are stacked into one block-diagonal
  CSR matrix and each reduction is a single sparse matvec over the
  concatenated state vector.  The block matrix is rebuilt (compacted to
  the live replicas) only once at least half its rows have retired, so
  total rebuild cost is amortized logarithmic in ``R``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.schedulers import (
    IndependentScheduler,
    ScheduledTwoStateMIS,
    SynchronousScheduler,
)
from repro.core.states import (
    BLACK,
    BLACK0,
    BLACK1,
    GRAY,
    SWITCH_ON_MAX_LEVEL,
    WHITE,
)
from repro.core.switch import RandomizedLogSwitch
from repro.core.three_color import ThreeColorMIS
from repro.core.three_state import ThreeStateMIS
from repro.core.two_state import TwoStateMIS
from repro.core.verify import assert_valid_mis

#: Dispatch table: serial process type → batched engine class.  Filled
#: by :func:`register_engine`; keyed by the *exact* type (subclasses do
#: not inherit batchability — their ``_advance`` may differ).
_ENGINE_DISPATCH: dict[type, type["_BatchedMISEngine"]] = {}


def register_engine(engine_cls: type["_BatchedMISEngine"]):
    """Class decorator: register an engine in the dispatch table."""
    _ENGINE_DISPATCH[engine_cls.process_type] = engine_cls
    return engine_cls


def engine_for(process: object) -> type["_BatchedMISEngine"] | None:
    """The batched engine class for ``process``, or ``None``.

    Looks the process's exact type up in the dispatch table, then lets
    the engine veto instances it cannot reproduce bitwise (e.g. a
    3-color process with an :class:`~repro.core.switch.OracleSwitch`, or
    a scheduled process under a single-vertex daemon).
    """
    engine = _ENGINE_DISPATCH.get(type(process))
    if engine is not None and engine.accepts(process):
        return engine
    return None


def batchable(process: object) -> bool:
    """Whether some registered engine can batch ``process``.

    Plain :class:`~repro.core.two_state.TwoStateMIS`,
    :class:`~repro.core.three_state.ThreeStateMIS`,
    :class:`~repro.core.three_color.ThreeColorMIS` (with the randomized
    switch on the same graph) and
    :class:`~repro.core.schedulers.ScheduledTwoStateMIS` (under the
    synchronous or independent daemons) qualify; everything else falls
    back to the serial engine.
    """
    return engine_for(process) is not None


def _stack_block_diag(blocks: list, n: int) -> sp.csr_matrix:
    """Block-diagonal CSR from same-order square CSR blocks.

    Equivalent to ``scipy.sparse.block_diag`` but assembled directly in
    CSR form with numpy concatenation (the scipy helper routes through
    COO and is noticeably slower for many small blocks).
    """
    data = np.concatenate([b.data for b in blocks])
    # Offsets in int64: R*n can exceed int32 range for large batches of
    # large graphs, and an int32 wrap would corrupt columns silently.
    indices = np.concatenate(
        [b.indices.astype(np.int64) + i * n for i, b in enumerate(blocks)]
    )
    nnz_offsets = np.cumsum([0] + [b.nnz for b in blocks], dtype=np.int64)
    indptr = np.concatenate(
        [blocks[0].indptr.astype(np.int64)]
        + [
            b.indptr[1:].astype(np.int64) + nnz_offsets[i + 1]
            for i, b in enumerate(blocks[1:], 0)
        ]
    )
    size = len(blocks) * n
    return sp.csr_matrix((data, indices, indptr), shape=(size, size))


class _BatchedMISEngine:
    """Shared machinery of the batched engines (see module docs).

    Subclasses set :attr:`process_type` and implement the four-hook
    contract: :meth:`_gather` (adopt per-replica state into ``(R, n)``
    arrays), :meth:`_black_rows` (black mask of selected replicas),
    :meth:`_advance_rows` (one synchronous round for the live replicas,
    drawing each replica's coins from its own source), and
    :meth:`_writeback_states` (sync final states into the wrapped
    processes).  The base class owns the run loop: stabilization
    detection, replica retirement, round budgets, and the shared-graph /
    block-diagonal reduction paths.
    """

    #: Serial process type this engine batches (subclasses override).
    process_type: type | None = None

    #: Compact the block-diagonal adjacency once the live fraction of
    #: its rows drops below this threshold.
    _COMPACT_THRESHOLD = 0.5

    @classmethod
    def accepts(cls, process: object) -> bool:
        """Whether this engine can reproduce ``process`` bitwise."""
        return type(process) is cls.process_type

    def __init__(self, processes: Sequence) -> None:
        processes = list(processes)
        if not processes:
            raise ValueError("need at least one process to batch")
        for p in processes:
            if not self.accepts(p):
                raise TypeError(
                    f"{type(self).__name__} cannot batch "
                    f"{type(p).__name__} instances"
                )
        n = processes[0].n
        if any(p.n != n for p in processes):
            raise ValueError("all batched processes must share n")
        self.processes = processes
        self.n = n
        self.replicas = len(processes)
        self.shared_graph = all(
            p.graph is processes[0].graph for p in processes
        )
        self._rounds = np.array([p.round for p in processes], dtype=np.int64)
        self._ops = processes[0].ops if self.shared_graph else None
        self._block: sp.csr_matrix | None = None
        self._scratch: np.ndarray | None = None
        self._block_size = 0
        self._gather()

    # ------------------------------------------------------------------
    # Subclass contract
    # ------------------------------------------------------------------
    def _gather(self) -> None:
        """Adopt the wrapped processes' state into ``(R, n)`` arrays."""
        raise NotImplementedError

    def _black_rows(self, rows: np.ndarray) -> np.ndarray:
        """Boolean black mask of the selected replicas (``B_t`` rows)."""
        raise NotImplementedError

    def _advance_rows(
        self,
        live: np.ndarray,
        pos: np.ndarray | None,
        black: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        """One synchronous round for the ``live`` replicas.

        ``black`` and ``counts`` are the current black mask and
        black-neighbour counts of the live rows (cached from the end of
        the previous round, saving one reduction per round).
        """
        raise NotImplementedError

    def _writeback_states(self) -> None:
        """Sync final per-replica states into the wrapped processes."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Batched neighbour reductions
    # ------------------------------------------------------------------
    def _rebuild_block(self, live: np.ndarray) -> None:
        """Compact the block-diagonal adjacency to the ``live`` replicas."""
        self._block = _stack_block_diag(
            [
                self.processes[int(r)].graph.adjacency_csr_int32()
                for r in live
            ],
            self.n,
        )
        self._block_size = live.size
        self._scratch = np.zeros((live.size, self.n), dtype=np.int32)

    def _count_nbrs(
        self, masks: np.ndarray, pos: np.ndarray | None
    ) -> np.ndarray:
        """``out[i, u] = |N(u) ∩ masks[i]|`` for each selected replica.

        ``pos`` maps mask rows to rows of the current block matrix
        (``None`` on the shared-graph path).  Rows of the block not in
        ``pos`` (replicas retired since the last compaction) multiply
        stale state; their counts are discarded by the gather.
        """
        if self.shared_graph:
            return self._ops.count_batch(masks)
        self._scratch[pos] = masks
        counts = self._block.dot(self._scratch.reshape(-1))
        return counts.reshape(self._block_size, self.n)[pos]

    def _exists_nbrs(
        self, masks: np.ndarray, pos: np.ndarray | None
    ) -> np.ndarray:
        """Batched ``exists``: whether some neighbour is in the mask."""
        return self._count_nbrs(masks, pos) > 0

    def _max_closed_rows(
        self, values: np.ndarray, pos: np.ndarray | None
    ) -> np.ndarray:
        """``out[i, u] = max over N+(u) of values[i, w]`` per replica.

        Shared-graph path: one :meth:`NeighborOps.max_closed_batch`
        call.  Block path: the same level-set probes expressed as
        block-diagonal reductions (values take few distinct levels —
        switch levels 0..5 — so this is a handful of matvecs).
        """
        if self.shared_graph:
            return self._ops.max_closed_batch(values)
        out = values.astype(np.int64).copy()  # self is included in N+.
        # Minimum level skipped (all-True probe, no-op write): one fewer
        # block-diagonal reduction per switch round.
        for level in np.unique(values)[1:]:
            has = self._exists_nbrs(values >= level, pos)
            out[has & (out < level)] = level
        return out

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def _covered_rows(
        self,
        black: np.ndarray,
        counts: np.ndarray,
        pos: np.ndarray | None,
    ) -> np.ndarray:
        """Stabilization predicate ``N+[I_t] = V`` per selected replica.

        ``counts`` are the black-neighbour counts of ``black`` (reused
        from the round's reduction).  The coverage reduction only runs
        for replicas that have stable black vertices at all — a replica
        with ``I_t = ∅`` cannot be covered.
        """
        stable_black = black & (counts == 0)
        candidates = stable_black.any(axis=1)
        covered_all = np.zeros(black.shape[0], dtype=bool)
        if candidates.any():
            sub = np.flatnonzero(candidates)
            nbr_stable = self._count_nbrs(
                stable_black[sub], None if pos is None else pos[sub]
            )
            covered = stable_black[sub] | (nbr_stable > 0)
            covered_all[sub] = covered.all(axis=1)
        if self.n == 0:
            covered_all[:] = True
        return covered_all

    def run(self, max_rounds: int = 1_000_000, verify: bool = True) -> list:
        """Run every replica to stabilization or the round budget.

        Returns a list of :class:`repro.sim.runner.RunResult`, one per
        wrapped process, in input order; the wrapped processes' states
        and round counters are synchronized with the outcome.

        Parameters
        ----------
        max_rounds:
            Per-replica round budget (counted from the replica's
            current round), as in :func:`repro.sim.runner.run_until_stable`.
        verify:
            Assert each stabilized replica's black set is a valid MIS.
        """
        from repro.sim.runner import RunResult

        if max_rounds < 0:
            raise ValueError("max_rounds must be >= 0")
        results: list[RunResult | None] = [None] * self.replicas
        start_rounds = self._rounds.copy()

        def retire(rows: np.ndarray) -> None:
            for r in rows:
                r = int(r)
                mis = np.flatnonzero(self._black_rows(np.array([r]))[0])
                if verify:
                    assert_valid_mis(self.processes[r].graph, mis)
                elapsed = int(self._rounds[r] - start_rounds[r])
                results[r] = RunResult(
                    stabilized=True,
                    stabilization_round=elapsed,
                    rounds_executed=elapsed,
                    mis=mis,
                )

        live = np.arange(self.replicas)
        pos: np.ndarray | None = None
        if not self.shared_graph:
            self._rebuild_block(live)
            pos = np.arange(self.replicas)
        black = self._black_rows(live)
        counts = self._count_nbrs(black, pos)
        covered = self._covered_rows(black, counts, pos)
        retire(live[covered])
        keep = ~covered
        live, black, counts = live[keep], black[keep], counts[keep]
        if pos is not None:
            pos = pos[keep]

        while live.size:
            executed = self._rounds[live] - start_rounds[live]
            in_budget = executed < max_rounds
            if not in_budget.all():
                for r in live[~in_budget]:
                    results[int(r)] = RunResult(
                        stabilized=False,
                        stabilization_round=None,
                        rounds_executed=int(max_rounds),
                        mis=None,
                    )
                live, black, counts = (
                    live[in_budget],
                    black[in_budget],
                    counts[in_budget],
                )
                if pos is not None:
                    pos = pos[in_budget]
                if not live.size:
                    break

            # One synchronous round; the cached `black`/`counts` are the
            # mask and black-neighbour counts of the current configuration.
            self._advance_rows(live, pos, black, counts)
            self._rounds[live] += 1

            black = self._black_rows(live)
            counts = self._count_nbrs(black, pos)
            covered = self._covered_rows(black, counts, pos)
            retire(live[covered])
            keep = ~covered
            live, black, counts = live[keep], black[keep], counts[keep]
            if pos is not None:
                pos = pos[keep]
                if 0 < live.size < self._COMPACT_THRESHOLD * self._block_size:
                    self._rebuild_block(live)
                    pos = np.arange(live.size)

        self._writeback()
        return results

    def _phi_rows(self, live: np.ndarray) -> np.ndarray:
        """One ``bits(n)`` draw per live replica, in replica order."""
        phi = np.empty((live.size, self.n), dtype=bool)
        for i, r in enumerate(live):
            phi[i] = self.processes[r].coins.bits(self.n)
        return phi

    def _writeback(self) -> None:
        """Sync final states and round counters into the wrapped processes."""
        self._writeback_states()
        for r, process in enumerate(self.processes):
            process.round = int(self._rounds[r])

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(replicas={self.replicas}, n={self.n}, "
            f"shared_graph={self.shared_graph})"
        )


@register_engine
class BatchedTwoStateMIS(_BatchedMISEngine):
    """``R`` independent 2-state MIS replicas advanced in lockstep.

    Parameters
    ----------
    processes:
        Non-empty sequence of :class:`~repro.core.two_state.TwoStateMIS`
        instances, all on graphs with the same vertex count ``n``.  The
        engine adopts each process's current state and coin source;
        after :meth:`run` the final states and round counters are
        written back, so the wrapped processes end up exactly as if they
        had been run serially.

    Notes
    -----
    Construct the processes first (their constructors consume the
    initial-state coin draws), then batch them.  The convenience entry
    points are :func:`repro.sim.runner.run_many_until_stable` and
    :func:`repro.sim.montecarlo.estimate_stabilization_time`
    (``batch="auto"``), which handle grouping and serial fallback.
    """

    process_type = TwoStateMIS

    def _gather(self) -> None:
        self._black = np.stack([p.black for p in self.processes])
        self._eager = np.array(
            [p.eager_white_promotion for p in self.processes], dtype=bool
        )

    def _black_rows(self, rows: np.ndarray) -> np.ndarray:
        return self._black[rows]

    def _advance_rows(self, live, pos, black, counts) -> None:
        has_black_nbr = counts > 0
        active = np.where(black, has_black_nbr, ~has_black_nbr)
        phi = self._phi_rows(live)
        eager = self._eager[live]
        if eager.any():
            # Ablation replicas: active white vertices promote with
            # probability 1 (their coin is drawn but ignored).
            promote = active & ~black & eager[:, None]
            self._black[live] = np.where(active, phi, black) | promote
        else:
            self._black[live] = np.where(active, phi, black)

    def _writeback_states(self) -> None:
        for r, process in enumerate(self.processes):
            process.black = self._black[r].copy()


@register_engine
class BatchedThreeStateMIS(_BatchedMISEngine):
    """``R`` independent 3-state MIS replicas advanced in lockstep.

    The state matrix is int8 over {WHITE, BLACK0, BLACK1}; each round
    costs two batched ``exists`` reductions (black neighbours — reused
    from the stabilization check — and black1 neighbours) plus one
    ``bits(n)`` draw per replica, exactly mirroring
    :meth:`repro.core.three_state.ThreeStateMIS._advance`.
    """

    process_type = ThreeStateMIS

    def _gather(self) -> None:
        self._states = np.stack([p.states for p in self.processes])

    def _black_rows(self, rows: np.ndarray) -> np.ndarray:
        return self._states[rows] != WHITE

    def _advance_rows(self, live, pos, black, counts) -> None:
        states = self._states[live]
        is_black1 = states == BLACK1
        is_black0 = states == BLACK0
        is_white = states == WHITE
        has_black1_nbr = self._exists_nbrs(is_black1, pos)
        has_black_nbr = counts > 0
        randomize = (
            is_black1
            | (is_black0 & ~has_black1_nbr)
            | (is_white & ~has_black_nbr)
        )
        demote = is_black0 & ~randomize  # black0 hearing a black1 beep
        phi = self._phi_rows(live)
        new_states = states.copy()
        new_states[randomize & phi] = BLACK1
        new_states[randomize & ~phi] = BLACK0
        new_states[demote] = WHITE
        self._states[live] = new_states

    def _writeback_states(self) -> None:
        for r, process in enumerate(self.processes):
            process.states = self._states[r].copy()


@register_engine
class BatchedThreeColorMIS(_BatchedMISEngine):
    """``R`` independent 3-color MIS replicas advanced in lockstep.

    Batches the color matrix *and* the per-replica
    :class:`~repro.core.switch.RandomizedLogSwitch` levels: the switch
    update's ``max over N+(u)`` diffusion runs as one
    :meth:`~repro.core.neighbor_ops.NeighborOps.max_closed_batch`
    aggregate over the ``(R, n)`` level matrix.  Per replica and per
    round the coin order is Definition 28's: the main process draws
    φ_t = ``bits(n)`` first, then the switch draws ``bernoulli(n, ζ)``
    — and the color update reads σ_{t-1} (the levels *before* the
    switch advances).

    Only processes whose switch is a plain ``RandomizedLogSwitch`` on
    the same graph are accepted (:class:`~repro.core.switch.OracleSwitch`
    and cross-graph switches fall back to the serial engine); ζ may
    differ between replicas.
    """

    process_type = ThreeColorMIS

    @classmethod
    def accepts(cls, process: object) -> bool:
        return (
            type(process) is ThreeColorMIS
            and type(process.switch) is RandomizedLogSwitch
            and process.switch.graph is process.graph
        )

    def _gather(self) -> None:
        self._colors = np.stack([p.colors for p in self.processes])
        self._levels = np.stack([p.switch.levels for p in self.processes])
        self._switch_rounds = np.array(
            [p.switch.round for p in self.processes], dtype=np.int64
        )

    def _black_rows(self, rows: np.ndarray) -> np.ndarray:
        return self._colors[rows] == BLACK

    def _advance_rows(self, live, pos, black, counts) -> None:
        colors = self._colors[live]
        levels = self._levels[live]
        white = colors == WHITE
        gray = colors == GRAY
        has_black_nbr = counts > 0
        sigma = levels <= SWITCH_ON_MAX_LEVEL  # σ_{t-1}

        conflicted_black = black & has_black_nbr
        lonely_white = white & ~has_black_nbr
        waking_gray = gray & sigma

        phi = self._phi_rows(live)
        new_colors = colors.copy()
        # Conflicted black → coin ? black : gray.
        new_colors[conflicted_black & ~phi] = GRAY
        # Lonely white → coin ? black : white.
        new_colors[lonely_white & phi] = BLACK
        # Gray with switch on → white.
        new_colors[waking_gray] = WHITE
        self._colors[live] = new_colors

        # Switch step (Definition 26), after the main φ_t draws.
        at_five = levels == 5
        at_zero = levels == 0
        b_zero = np.empty((live.size, self.n), dtype=bool)
        for i, r in enumerate(live):
            switch = self.processes[r].switch
            b_zero[i] = switch.coins.bernoulli(self.n, switch.zeta)
        stay_five = at_five & ~b_zero  # b = 1 → remain at level 5
        reset_to_five = stay_five | at_zero
        nbr_max = self._max_closed_rows(levels, pos)
        self._levels[live] = np.where(
            reset_to_five, 5, np.maximum(nbr_max - 1, 0)
        ).astype(np.int8)
        self._switch_rounds[live] += 1

    def _writeback_states(self) -> None:
        for r, process in enumerate(self.processes):
            process.colors = self._colors[r].copy()
            process.switch.levels = self._levels[r].copy()
            process.switch.round = int(self._switch_rounds[r])


@register_engine
class BatchedScheduledTwoStateMIS(_BatchedMISEngine):
    """``R`` independent scheduled 2-state replicas advanced in lockstep.

    Supports the coin-free :class:`~repro.core.schedulers.SynchronousScheduler`
    and the :class:`~repro.core.schedulers.IndependentScheduler` daemon
    (one ``bernoulli(n, q)`` activation mask per replica per round,
    drawn *before* the replica's φ_t — the serial coin order).  The
    single-vertex daemons are state-dependent and stay on the serial
    path; ``q`` may differ between replicas.
    """

    process_type = ScheduledTwoStateMIS

    @classmethod
    def accepts(cls, process: object) -> bool:
        return type(process) is ScheduledTwoStateMIS and type(
            process.scheduler
        ) in (SynchronousScheduler, IndependentScheduler)

    def _gather(self) -> None:
        self._black = np.stack([p.black for p in self.processes])
        # q per replica; NaN marks the synchronous (draw-free) daemon.
        self._q = np.array(
            [
                p.scheduler.q
                if isinstance(p.scheduler, IndependentScheduler)
                else np.nan
                for p in self.processes
            ],
            dtype=np.float64,
        )

    def _black_rows(self, rows: np.ndarray) -> np.ndarray:
        return self._black[rows]

    def _advance_rows(self, live, pos, black, counts) -> None:
        selected = np.ones((live.size, self.n), dtype=bool)
        for i, r in enumerate(live):
            q = self._q[r]
            if not np.isnan(q):
                selected[i] = self.processes[r].coins.bernoulli(self.n, q)
        has_black_nbr = counts > 0
        rule_enabled = np.where(black, has_black_nbr, ~has_black_nbr)
        active = rule_enabled & selected
        phi = self._phi_rows(live)
        new_black = black.copy()
        new_black[active] = phi[active]
        self._black[live] = new_black

    def _writeback_states(self) -> None:
        for r, process in enumerate(self.processes):
            process.black = self._black[r].copy()
