"""Common API for the paper's round-based self-stabilizing processes.

All processes share the synchronous structure of §2: an arbitrary initial
state vector, parallel rounds ``t = 1, 2, ...``, per-round per-vertex
coins (see :mod:`repro.sim.rng`), and the stable/stabilized notions of
Definition 4 (which carry over verbatim to the 3-state and 3-color
processes):

* a vertex is *stable* if it is black with no black neighbours, or it is
  not black and has a stable black neighbour;
* the process is *stabilized* once all vertices are stable, equivalently
  once ``N+[I_t] = V`` where ``I_t`` is the set of black vertices with no
  black neighbour.

Subclasses implement :meth:`_advance` (one synchronous round) and
:meth:`black_mask`.

Aggregate bookkeeping
---------------------

The stability protocol needs the same neighbourhood reductions the
update rules do (``exists(black)``, ``exists(I_t)``).  Two mechanisms
keep the run loop from paying for them twice:

* :meth:`_aggregate` memoizes reductions for the *current* state
  (keyed on the identity of the state array via :meth:`_state_token`),
  so ``step()`` and ``is_stabilized()`` inside
  :func:`repro.sim.runner.run_until_stable` share one computation per
  round instead of recomputing per call;
* processes running an incremental frontier engine
  (:mod:`repro.core.frontier`) expose their persistent aggregates via
  :meth:`_frontier_aggregates`, and the protocol methods below read
  ``I_t`` / ``N+[I_t]`` / the unstable counter straight from them —
  making :meth:`is_stabilized` O(1) instead of two fresh reductions.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

from repro.core.neighbor_ops import NeighborOps, make_neighbor_ops
from repro.graphs.graph import Graph
from repro.sim.rng import CoinSource, as_coin_source

if TYPE_CHECKING:  # import cycles: frontier/runner both import process
    from repro.core.frontier import FrontierAggregates
    from repro.sim.runner import RunResult

#: Sentinel: memoized aggregates are unconditionally stale.
_STALE = object()


class MISProcess:
    """Base class for the 2-state, 3-state and 3-color MIS processes.

    Parameters
    ----------
    graph:
        The graph ``G = (V, E)``.
    coins:
        A :class:`~repro.sim.rng.CoinSource`, an integer seed, a numpy
        ``Generator``, or ``None`` (fresh OS entropy).
    backend:
        Neighbourhood-aggregation backend (``"auto"``, ``"dense"``,
        ``"sparse"``, ``"adjlist"``).
    ops:
        A pre-built :class:`~repro.core.neighbor_ops.NeighborOps` to
        adopt instead of constructing one from ``backend`` — the
        dynamic layer (:mod:`repro.dynamic`) injects its delta-aware
        overlay backend this way.  When given, ``backend`` is ignored.
    """

    #: Human-readable name of the process (subclasses override).
    name: str = "abstract"
    #: Number of per-vertex states the process uses (paper's accounting).
    state_count: int = 0

    def __init__(
        self,
        graph: Graph,
        coins: CoinSource | int | np.random.Generator | None = None,
        backend: str = "auto",
        ops: NeighborOps | None = None,
    ) -> None:
        self.graph = graph
        self.n = graph.n
        self.coins = as_coin_source(coins)
        self.ops: NeighborOps = (
            ops if ops is not None else make_neighbor_ops(graph, backend)
        )
        self.round: int = 0
        self._agg_cache: dict[str, np.ndarray] = {}
        self._agg_token: object = _STALE
        #: Incremental aggregates, when a frontier engine is active
        #: (set lazily by subclasses that support ``engine=``).
        self._frontier = None

    # ------------------------------------------------------------------
    # Subclass contract
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Execute one synchronous round (update all states in parallel)."""
        raise NotImplementedError

    def black_mask(self) -> np.ndarray:
        """Boolean array: which vertices are currently black (``B_t``).

        For the 3-state process "black" means state ∈ {black0, black1};
        for the 3-color process it means state == black.
        """
        raise NotImplementedError

    def active_mask(self) -> np.ndarray:
        """Boolean array of active vertices ``A_t`` (subclass-specific)."""
        raise NotImplementedError

    def state_vector(self) -> np.ndarray:
        """A copy of the current full state vector (encoding varies)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Aggregate bookkeeping (memoization + frontier dispatch)
    # ------------------------------------------------------------------
    def _state_token(self) -> object:
        """Identity token of the current state (memoization key).

        Subclasses whose ``_advance`` rebinds the state array each round
        return that array, so the memo cache self-invalidates on every
        state change.  The default returns a fresh object per call,
        which disables memoization (always safe).
        """
        return object()

    def _state_changed(self) -> None:
        """Invalidate memoized and incremental aggregates.

        Must be called after any *in-place* mutation of the state
        vector (e.g. targeted fault injection); rebinding the state
        array invalidates both caches automatically via identity.
        """
        self._agg_token = _STALE
        if self._frontier is not None:
            self._frontier.invalidate()

    def _topology_changed(self) -> None:
        """Invalidate memoized aggregates after a graph topology change.

        Unlike :meth:`_state_changed` this leaves the frontier
        aggregates alone: the dynamic layer (:mod:`repro.dynamic`)
        repairs them in place via
        :meth:`repro.core.frontier.FrontierAggregates.apply_topology_delta`,
        and discarding them here would forfeit that repair.  Callers
        that *cannot* repair must invalidate the frontier themselves.
        """
        self._agg_token = _STALE

    def _aggregate(
        self, key: str, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """Memoize a neighbourhood reduction for the current state.

        Within one round, ``step()``'s update rule and the stability
        predicate consume the same reductions; this cache makes them
        pay once.  Callers must not mutate the returned array.
        """
        token = self._state_token()
        if token is not self._agg_token:
            self._agg_cache.clear()
            self._agg_token = token
        if key not in self._agg_cache:
            self._agg_cache[key] = compute()
        return self._agg_cache[key]

    def _frontier_aggregates(self) -> "FrontierAggregates | None":
        """The process's live incremental aggregates, or ``None``.

        Subclasses running a frontier engine override this to return a
        (rebuilt-if-stale) :class:`repro.core.frontier.FrontierAggregates`;
        the stability protocol below then reads the maintained masks
        instead of recomputing reductions.
        """
        return None

    # ------------------------------------------------------------------
    # Shared semantics
    # ------------------------------------------------------------------
    def step(self, rounds: int = 1) -> None:
        """Advance the process by ``rounds`` synchronous rounds."""
        if rounds < 0:
            raise ValueError("rounds must be >= 0")
        for _ in range(rounds):
            self._advance()
            self.round += 1

    def stable_black_mask(self) -> np.ndarray:
        """``I_t``: black vertices with no black neighbour.

        ``I_t`` is an independent set and a subset of the final MIS; once
        a vertex enters ``I_t`` it stays (Definition 4 and §2).
        """
        frontier = self._frontier_aggregates()
        if frontier is not None:
            return frontier.stable.copy()
        black = self.black_mask()
        return black & ~self._aggregate(
            "exists_black", lambda: self.ops.exists(black)
        )

    def covered_mask(self) -> np.ndarray:
        """``N+[I_t]``: vertices that are stable (self or neighbour in I_t)."""
        frontier = self._frontier_aggregates()
        if frontier is not None:
            return frontier.covered.copy()
        stable_black = self.stable_black_mask()
        return stable_black | self._aggregate(
            "exists_stable_black", lambda: self.ops.exists(stable_black)
        )

    def unstable_mask(self) -> np.ndarray:
        """``V_t = V \\ N+[I_t]``: vertices that are not yet stable."""
        return ~self.covered_mask()

    def is_stabilized(self) -> bool:
        """Whether all vertices are stable (``N+[I_t] = V``).

        O(1) under a frontier engine (the maintained unstable-vertex
        counter); otherwise one memoized reduction pass.
        """
        frontier = self._frontier_aggregates()
        if frontier is not None:
            return frontier.unstable_total == 0
        return bool(self.covered_mask().all())

    def trajectory_counts(self) -> tuple[int, int, int, int]:
        """``(|B_t|, |A_t|, |I_t|, |V_t|)`` — the trace aggregates.

        One tuple per round is what :class:`repro.sim.trace.TraceRecorder`
        records; under a frontier engine ``|I_t|`` and ``|V_t|`` come
        straight from the maintained masks/counter instead of fresh
        reductions, which is what makes trajectory-recording runs on
        large graphs cheap.
        """
        frontier = self._frontier_aggregates()
        n_black = int(np.count_nonzero(self.black_mask()))
        n_active = int(np.count_nonzero(self.active_mask()))
        if frontier is not None:
            return (
                n_black,
                n_active,
                int(np.count_nonzero(frontier.stable)),
                frontier.unstable_total,
            )
        n_stable = int(np.count_nonzero(self.stable_black_mask()))
        n_unstable = self.n - int(np.count_nonzero(self.covered_mask()))
        return (n_black, n_active, n_stable, n_unstable)

    def mis(self) -> np.ndarray:
        """The stabilized MIS as a sorted vertex array.

        Raises
        ------
        RuntimeError
            If the process has not stabilized yet.
        """
        if not self.is_stabilized():
            raise RuntimeError("process has not stabilized; no MIS yet")
        return np.flatnonzero(self.black_mask())

    def run(self, max_rounds: int = 1_000_000) -> "RunResult":
        """Convenience wrapper around :func:`repro.sim.runner.run_until_stable`."""
        from repro.sim.runner import run_until_stable

        return run_until_stable(self, max_rounds=max_rounds)

    # ------------------------------------------------------------------
    # Fault injection hooks (self-stabilization experiments)
    # ------------------------------------------------------------------
    def corrupt(self, states: np.ndarray) -> None:
        """Overwrite the full state vector (transient-fault injection).

        Subclasses validate the encoding.  The round counter is *not*
        reset: self-stabilization means recovery without a restart.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, round={self.round}, "
            f"stabilized={self.is_stabilized()})"
        )
