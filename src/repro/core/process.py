"""Common API for the paper's round-based self-stabilizing processes.

All processes share the synchronous structure of §2: an arbitrary initial
state vector, parallel rounds ``t = 1, 2, ...``, per-round per-vertex
coins (see :mod:`repro.sim.rng`), and the stable/stabilized notions of
Definition 4 (which carry over verbatim to the 3-state and 3-color
processes):

* a vertex is *stable* if it is black with no black neighbours, or it is
  not black and has a stable black neighbour;
* the process is *stabilized* once all vertices are stable, equivalently
  once ``N+[I_t] = V`` where ``I_t`` is the set of black vertices with no
  black neighbour.

Subclasses implement :meth:`_advance` (one synchronous round) and
:meth:`black_mask`.
"""

from __future__ import annotations

import numpy as np

from repro.core.neighbor_ops import NeighborOps, make_neighbor_ops
from repro.graphs.graph import Graph
from repro.sim.rng import CoinSource, as_coin_source


class MISProcess:
    """Base class for the 2-state, 3-state and 3-color MIS processes.

    Parameters
    ----------
    graph:
        The graph ``G = (V, E)``.
    coins:
        A :class:`~repro.sim.rng.CoinSource`, an integer seed, a numpy
        ``Generator``, or ``None`` (fresh OS entropy).
    backend:
        Neighbourhood-aggregation backend (``"auto"``, ``"dense"``,
        ``"sparse"``, ``"adjlist"``).
    """

    #: Human-readable name of the process (subclasses override).
    name: str = "abstract"
    #: Number of per-vertex states the process uses (paper's accounting).
    state_count: int = 0

    def __init__(
        self,
        graph: Graph,
        coins: CoinSource | int | np.random.Generator | None = None,
        backend: str = "auto",
    ) -> None:
        self.graph = graph
        self.n = graph.n
        self.coins = as_coin_source(coins)
        self.ops: NeighborOps = make_neighbor_ops(graph, backend)
        self.round: int = 0

    # ------------------------------------------------------------------
    # Subclass contract
    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Execute one synchronous round (update all states in parallel)."""
        raise NotImplementedError

    def black_mask(self) -> np.ndarray:
        """Boolean array: which vertices are currently black (``B_t``).

        For the 3-state process "black" means state ∈ {black0, black1};
        for the 3-color process it means state == black.
        """
        raise NotImplementedError

    def active_mask(self) -> np.ndarray:
        """Boolean array of active vertices ``A_t`` (subclass-specific)."""
        raise NotImplementedError

    def state_vector(self) -> np.ndarray:
        """A copy of the current full state vector (encoding varies)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared semantics
    # ------------------------------------------------------------------
    def step(self, rounds: int = 1) -> None:
        """Advance the process by ``rounds`` synchronous rounds."""
        if rounds < 0:
            raise ValueError("rounds must be >= 0")
        for _ in range(rounds):
            self._advance()
            self.round += 1

    def stable_black_mask(self) -> np.ndarray:
        """``I_t``: black vertices with no black neighbour.

        ``I_t`` is an independent set and a subset of the final MIS; once
        a vertex enters ``I_t`` it stays (Definition 4 and §2).
        """
        black = self.black_mask()
        return black & ~self.ops.exists(black)

    def covered_mask(self) -> np.ndarray:
        """``N+[I_t]``: vertices that are stable (self or neighbour in I_t)."""
        stable_black = self.stable_black_mask()
        return stable_black | self.ops.exists(stable_black)

    def unstable_mask(self) -> np.ndarray:
        """``V_t = V \\ N+[I_t]``: vertices that are not yet stable."""
        return ~self.covered_mask()

    def is_stabilized(self) -> bool:
        """Whether all vertices are stable (``N+[I_t] = V``)."""
        return bool(self.covered_mask().all())

    def mis(self) -> np.ndarray:
        """The stabilized MIS as a sorted vertex array.

        Raises
        ------
        RuntimeError
            If the process has not stabilized yet.
        """
        if not self.is_stabilized():
            raise RuntimeError("process has not stabilized; no MIS yet")
        return np.flatnonzero(self.black_mask())

    def run(self, max_rounds: int = 1_000_000):
        """Convenience wrapper around :func:`repro.sim.runner.run_until_stable`."""
        from repro.sim.runner import run_until_stable

        return run_until_stable(self, max_rounds=max_rounds)

    # ------------------------------------------------------------------
    # Fault injection hooks (self-stabilization experiments)
    # ------------------------------------------------------------------
    def corrupt(self, states: np.ndarray) -> None:
        """Overwrite the full state vector (transient-fault injection).

        Subclasses validate the encoding.  The round counter is *not*
        reset: self-stabilization means recovery without a restart.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, round={self.round}, "
            f"stabilized={self.is_stabilized()})"
        )
