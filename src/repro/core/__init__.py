"""The paper's processes: 2-state, 3-state, logarithmic switch, 3-color.

This subpackage is the primary contribution layer of the reproduction.
Every definition from the paper has a direct counterpart:

* Definition 4  → :class:`repro.core.two_state.TwoStateMIS`
* Definition 5  → :class:`repro.core.three_state.ThreeStateMIS`
* Definition 25 → :class:`repro.core.switch.SwitchSchedule` (abstract
  on/off sequence with properties S1-S3)
* Definition 26 → :class:`repro.core.switch.RandomizedLogSwitch`
* Definition 28 → :class:`repro.core.three_color.ThreeColorMIS`

Plus the analytic notation of §2 and §4.1 in :mod:`repro.core.activity`
and MIS/stability verification in :mod:`repro.core.verify`.
"""

from repro.core.states import (
    WHITE,
    BLACK,
    GRAY,
    BLACK0,
    BLACK1,
    TWO_STATE_NAMES,
    THREE_STATE_NAMES,
    THREE_COLOR_NAMES,
)
from repro.core.neighbor_ops import NeighborOps, make_neighbor_ops
from repro.core.process import MISProcess
from repro.core.two_state import TwoStateMIS
from repro.core.batched import (
    BatchedScheduledTwoStateMIS,
    BatchedThreeColorMIS,
    BatchedThreeStateMIS,
    BatchedTwoStateMIS,
    batchable,
    engine_for,
)
from repro.core.three_state import ThreeStateMIS
from repro.core.switch import (
    RandomizedLogSwitch,
    OracleSwitch,
    SwitchTraceAnalyzer,
)
from repro.core.three_color import ThreeColorMIS
from repro.core.randphase import RandPhaseClock
from repro.core.schedulers import (
    ScheduledTwoStateMIS,
    SynchronousScheduler,
    IndependentScheduler,
    SingleVertexScheduler,
    AdversarialGreedyScheduler,
)
from repro.core.verify import (
    is_independent_set,
    is_maximal_independent_set,
    independence_violations,
    maximality_violations,
    assert_valid_mis,
)
from repro.core.activity import (
    active_set,
    k_active_set,
    stable_black_set,
    unstable_set,
    theta_u,
)

__all__ = [
    "WHITE",
    "BLACK",
    "GRAY",
    "BLACK0",
    "BLACK1",
    "TWO_STATE_NAMES",
    "THREE_STATE_NAMES",
    "THREE_COLOR_NAMES",
    "NeighborOps",
    "make_neighbor_ops",
    "MISProcess",
    "TwoStateMIS",
    "BatchedTwoStateMIS",
    "BatchedThreeStateMIS",
    "BatchedThreeColorMIS",
    "BatchedScheduledTwoStateMIS",
    "batchable",
    "engine_for",
    "ThreeStateMIS",
    "RandomizedLogSwitch",
    "OracleSwitch",
    "SwitchTraceAnalyzer",
    "ThreeColorMIS",
    "RandPhaseClock",
    "ScheduledTwoStateMIS",
    "SynchronousScheduler",
    "IndependentScheduler",
    "SingleVertexScheduler",
    "AdversarialGreedyScheduler",
    "is_independent_set",
    "is_maximal_independent_set",
    "independence_violations",
    "maximality_violations",
    "assert_valid_mis",
    "active_set",
    "k_active_set",
    "stable_black_set",
    "unstable_set",
    "theta_u",
]
