"""The logarithmic switch (Definitions 25 and 26, Lemma 27).

The 3-color MIS process needs, per vertex, a binary on/off sequence
σ_0(u), σ_1(u), ... satisfying (for a parameters ``a``, ``b``):

* (S1) every run of consecutive ``off`` values has length at most a ln n;
* (S2) if diam(G) <= 2, every off-run after the first on (past round
  a/6 ln n) has length at least a/6 ln n;
* (S3) if diam(G) <= 2, every on-run (after a constant prefix) has
  length at most b.

:class:`RandomizedLogSwitch` implements Definition 26: each vertex holds a
level in {0..5}; a vertex at level 5 stays with probability 1 - ζ, and
otherwise (and from any level except 0) drops to
``max(level over N+(u)) - 1``; level 0 resets to 5.  The on/off mapping is
``on ⇔ level <= 2``.  The core mechanism equals the RandPhase phase clock
of Emek-Keren for D = 3 — but, as the paper stresses, it is used as a
local non-synchronized counter, not for synchronization.

:class:`OracleSwitch` is a deterministic switch used in tests and
ablations: it realizes ideal (S1)-(S3) sequences directly.

:class:`SwitchTraceAnalyzer` measures S1-S3 run lengths on recorded
sequences — the measurement instrument of experiment E7.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

import numpy as np

from repro.core.neighbor_ops import NeighborOps, make_neighbor_ops
from repro.core.states import (
    SWITCH_ON_MAX_LEVEL,
    validate_switch_levels,
)
from repro.graphs.graph import Graph
from repro.sim.rng import CoinSource, as_coin_source

#: Definition 28 fixes the switch parameter a = 512, i.e. ζ = 4/a = 2^-7.
DEFAULT_A: float = 512.0


class SwitchProcess:
    """Interface required by :class:`repro.core.three_color.ThreeColorMIS`.

    A switch process exposes the current σ_t(u) values and advances in
    lockstep with the main process.
    """

    def sigma(self) -> np.ndarray:
        """Boolean array: ``True`` where σ_t(u) = on."""
        raise NotImplementedError

    def step(self) -> None:
        """Advance one synchronous round."""
        raise NotImplementedError


class RandomizedLogSwitch(SwitchProcess):
    """Definition 26: the randomized logarithmic switch (6 states).

    Parameters
    ----------
    graph:
        Underlying graph (levels diffuse via max over N+(u)).
    coins:
        Coin source; one ``bernoulli(n, ζ)`` draw per round.
    zeta:
        Reset probability ζ ∈ (0, 1/2].  Definition 28 uses ζ = 4/a with
        a = 512, i.e. ζ = 2^-7 = 0.0078125.
    init:
        Initial levels: int array in 0..5, ``"random"`` or ``None``
        (random levels, consuming one ``bernoulli(n, 0.5)``-free draw —
        levels are derived from two ``bits`` draws), or ``"all_zero"`` /
        ``"all_five"``.
    """

    def __init__(
        self,
        graph: Graph,
        coins: CoinSource | int | np.random.Generator | None = None,
        zeta: float = 4.0 / DEFAULT_A,
        init: np.ndarray | str | None = None,
        backend: str = "auto",
        ops: NeighborOps | None = None,
    ) -> None:
        if not 0.0 < zeta <= 0.5:
            raise ValueError(f"zeta must be in (0, 1/2], got {zeta}")
        self.graph = graph
        self.n = graph.n
        self.zeta = float(zeta)
        self.coins = as_coin_source(coins)
        self.ops = ops if ops is not None else make_neighbor_ops(graph, backend)
        self.levels = self._resolve_init(init)
        self.round = 0

    def _resolve_init(self, init: np.ndarray | str | None) -> np.ndarray:
        if init is None or (isinstance(init, str) and init == "random"):
            # Derive a uniform level in 0..5 from three coin bits via
            # rejection-free folding: value = (b0 + 2 b1 + 4 b2) mod 6 is
            # *not* uniform; instead draw uniforms via bernoulli trick.
            # We simply use three bits to index 0..7 and fold 6,7 -> 0,1;
            # slight non-uniformity is irrelevant for an *arbitrary*
            # adversarial initialization, but we document it.
            b0 = self.coins.bits(self.n).astype(np.int8)  # repro-lint: disable=coin-purity (documented init-time draw)
            b1 = self.coins.bits(self.n).astype(np.int8)  # repro-lint: disable=coin-purity (documented init-time draw)
            b2 = self.coins.bits(self.n).astype(np.int8)  # repro-lint: disable=coin-purity (documented init-time draw)
            raw = b0 + 2 * b1 + 4 * b2
            raw[raw >= 6] -= 6
            return raw.astype(np.int8)
        if isinstance(init, str):
            if init == "all_zero":
                return np.zeros(self.n, dtype=np.int8)
            if init == "all_five":
                return np.full(self.n, 5, dtype=np.int8)
            raise ValueError(f"unknown init spec {init!r}")
        return validate_switch_levels(init, self.n)

    def step(self) -> None:
        """One round of the Definition 26 update rule."""
        levels = self.levels
        at_five = levels == 5
        at_zero = levels == 0
        # b_t(u) with P[b = 0] = ζ; drawn for level-5 vertices (we draw
        # for all vertices, matching the everyone-flips discipline).
        b_zero = self.coins.bernoulli(self.n, self.zeta)
        stay_five = at_five & ~b_zero  # b = 1 → remain at level 5
        reset_to_five = stay_five | at_zero
        nbr_max = self.ops.max_closed(levels)
        new_levels = np.where(
            reset_to_five, 5, np.maximum(nbr_max - 1, 0)
        ).astype(np.int8)
        self.levels = new_levels
        self.round += 1

    def sigma(self) -> np.ndarray:
        """on ⇔ level <= 2 (Definition 26's mapping)."""
        return self.levels <= SWITCH_ON_MAX_LEVEL

    def corrupt(self, levels: np.ndarray) -> None:
        """Overwrite levels (transient-fault injection)."""
        self.levels = validate_switch_levels(levels, self.n)


class OracleSwitch(SwitchProcess):
    """Deterministic switch realizing ideal (S1)-(S3) sequences.

    Every vertex shares the same periodic schedule: ``on_run`` rounds on,
    then ``off_run`` rounds off, repeated, with a per-vertex phase shift
    of ``stagger * u`` rounds (stagger 0 = fully synchronized).  Used by
    tests and by the switch ablation to isolate the main 3-color dynamics
    from switch randomness.
    """

    def __init__(
        self,
        n: int,
        on_run: int = 3,
        off_run: int = 16,
        stagger: int = 0,
    ) -> None:
        if on_run < 1 or off_run < 0:
            raise ValueError("on_run >= 1 and off_run >= 0 required")
        self.n = n
        self.on_run = on_run
        self.off_run = off_run
        self.period = on_run + off_run
        self.stagger = stagger
        self.round = 0

    def sigma(self) -> np.ndarray:
        phases = (
            np.arange(self.n, dtype=np.int64) * self.stagger + self.round
        ) % max(self.period, 1)
        return phases < self.on_run

    def step(self) -> None:
        self.round += 1


@dataclass
class RunLengthStats:
    """Run-length statistics for one vertex's binary sequence."""

    max_off_run: int
    min_off_run_after_first_on: int | None
    max_on_run_after_prefix: int
    num_switches: int


class SwitchTraceAnalyzer:
    """Accumulates σ_t arrays and measures the S1-S3 quantities.

    Typical use (experiment E7)::

        switch = RandomizedLogSwitch(g, coins=seed)
        analyzer = SwitchTraceAnalyzer()
        for _ in range(rounds):
            analyzer.record(switch.sigma())
            switch.step()
        report = analyzer.analyze(a=512, n=g.n, diam_le_2=True)
    """

    def __init__(self) -> None:
        self._rows: list[np.ndarray] = []

    def record(self, sigma: np.ndarray) -> None:
        """Append one round's σ values (boolean array)."""
        self._rows.append(np.asarray(sigma, dtype=bool).copy())

    @property
    def rounds(self) -> int:
        """Number of recorded rounds."""
        return len(self._rows)

    def sequence(self, u: int) -> np.ndarray:
        """The recorded on/off sequence of vertex ``u``."""
        return np.array([row[u] for row in self._rows], dtype=bool)

    @staticmethod
    def _runs(seq: np.ndarray) -> list[tuple[bool, int]]:
        """Run-length encode a boolean sequence."""
        runs: list[tuple[bool, int]] = []
        for value in seq:
            if runs and runs[-1][0] == bool(value):
                runs[-1] = (runs[-1][0], runs[-1][1] + 1)
            else:
                runs.append((bool(value), 1))
        return runs

    def vertex_stats(self, u: int, skip_prefix: int = 0) -> RunLengthStats:
        """Run-length statistics for vertex ``u``.

        ``skip_prefix`` discards the first rounds before measuring
        (S2)/(S3) — these properties hold only after a warm-up in
        Definition 25.
        """
        seq = self.sequence(u)
        runs = self._runs(seq)
        max_off = max(
            (length for value, length in runs if not value), default=0
        )
        # (S2): off-runs strictly after the first on in the suffix.
        suffix = seq[skip_prefix:]
        suffix_runs = self._runs(suffix)
        first_on_seen = False
        min_off_after_on: int | None = None
        max_on_after_prefix = 0
        for idx, (value, length) in enumerate(suffix_runs):
            if value:
                first_on_seen = True
                max_on_after_prefix = max(max_on_after_prefix, length)
            elif first_on_seen:
                is_last = idx == len(suffix_runs) - 1
                if not is_last:  # a truncated final off-run is not a run
                    if min_off_after_on is None or length < min_off_after_on:
                        min_off_after_on = length
        num_switches = sum(1 for _ in suffix_runs) - 1 if suffix_runs else 0
        return RunLengthStats(
            max_off_run=max_off,
            min_off_run_after_first_on=min_off_after_on,
            max_on_run_after_prefix=max_on_after_prefix,
            num_switches=max(num_switches, 0),
        )

    def analyze(
        self,
        a: float,
        n: int,
        diam_le_2: bool,
        skip_prefix: int | None = None,
    ) -> dict[str, object]:
        """Check S1-S3 over all vertices; returns a report dict.

        Keys: ``s1_holds``, ``s2_holds``, ``s3_holds`` (booleans, with
        S2/S3 reported only when ``diam_le_2``), plus the witnessing
        extreme run lengths.
        """
        if not self._rows:
            raise RuntimeError("no rounds recorded")
        n_vertices = self._rows[0].shape[0]
        log_n = math.log(max(n, 2))
        s1_bound = a * log_n
        s2_bound = (a / 6.0) * log_n
        if skip_prefix is None:
            skip_prefix = int(math.ceil(s2_bound))
        worst_off = 0
        worst_on = 0
        min_off: int | None = None
        for u in range(n_vertices):
            stats = self.vertex_stats(u, skip_prefix=skip_prefix)
            worst_off = max(worst_off, stats.max_off_run)
            worst_on = max(worst_on, stats.max_on_run_after_prefix)
            if stats.min_off_run_after_first_on is not None:
                if min_off is None or stats.min_off_run_after_first_on < min_off:
                    min_off = stats.min_off_run_after_first_on
        report: dict[str, object] = {
            "rounds": self.rounds,
            "s1_bound": s1_bound,
            "max_off_run": worst_off,
            "s1_holds": worst_off <= s1_bound,
        }
        if diam_le_2:
            report["s2_bound"] = s2_bound
            report["min_off_run"] = min_off
            report["s2_holds"] = min_off is None or min_off >= s2_bound
            report["max_on_run"] = worst_on
            report["s3_holds"] = worst_on <= 3
        return report
