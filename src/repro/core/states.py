"""State alphabets for the paper's processes.

All engines store per-vertex states in compact numpy ``int8`` arrays; the
constants here fix the encodings shared between the vectorized engines,
the pure-python references, and the communication-model simulations.

Encodings
---------
2-state process (Definition 4): boolean array, ``True`` = black.

3-state process (Definition 5): ``WHITE = 0``, ``BLACK0 = 1``,
``BLACK1 = 2``.  A vertex is *black* when its state is BLACK0 or BLACK1.

3-color process (Definition 28): ``WHITE = 0``, ``GRAY = 1``,
``BLACK = 2``.  The gray state is treated by neighbours like non-active
white.

Randomized logarithmic switch (Definition 26): levels ``0..5`` stored in
``int8``; the on/off mapping is ``on ⇔ level <= 2``.
"""

from __future__ import annotations

import numpy as np

# --- 3-color process (and generic color names) ---
WHITE: int = 0
GRAY: int = 1
BLACK: int = 2

# --- 3-state process ---
# WHITE shares the value 0; the two black sub-states:
BLACK0: int = 1
BLACK1: int = 2

TWO_STATE_NAMES: dict[bool, str] = {False: "white", True: "black"}
THREE_STATE_NAMES: dict[int, str] = {
    WHITE: "white",
    BLACK0: "black0",
    BLACK1: "black1",
}
THREE_COLOR_NAMES: dict[int, str] = {
    WHITE: "white",
    GRAY: "gray",
    BLACK: "black",
}

# --- logarithmic switch ---
SWITCH_LEVELS: int = 6  # levels 0..5
SWITCH_ON_MAX_LEVEL: int = 2  # on ⇔ level <= 2


def validate_two_state(states: np.ndarray, n: int) -> np.ndarray:
    """Validate/coerce a 2-state vector (boolean, length n)."""
    arr = np.asarray(states)
    if arr.shape != (n,):
        raise ValueError(f"state vector must have shape ({n},), got {arr.shape}")
    if arr.dtype != bool:
        if not np.isin(arr, (0, 1)).all():
            raise ValueError("2-state vector entries must be 0/1 or bool")
        arr = arr.astype(bool)
    return arr.copy()

def validate_three_state(states: np.ndarray, n: int) -> np.ndarray:
    """Validate/coerce a 3-state vector (int8 in {WHITE, BLACK0, BLACK1})."""
    arr = np.asarray(states)
    if arr.shape != (n,):
        raise ValueError(f"state vector must have shape ({n},), got {arr.shape}")
    if not np.isin(arr, (WHITE, BLACK0, BLACK1)).all():
        raise ValueError("3-state entries must be in {0, 1, 2}")
    return arr.astype(np.int8)


def validate_three_color(states: np.ndarray, n: int) -> np.ndarray:
    """Validate/coerce a 3-color vector (int8 in {WHITE, GRAY, BLACK})."""
    arr = np.asarray(states)
    if arr.shape != (n,):
        raise ValueError(f"state vector must have shape ({n},), got {arr.shape}")
    if not np.isin(arr, (WHITE, GRAY, BLACK)).all():
        raise ValueError("3-color entries must be in {0, 1, 2}")
    return arr.astype(np.int8)


def validate_switch_levels(levels: np.ndarray, n: int) -> np.ndarray:
    """Validate/coerce a switch-level vector (int8 in 0..5)."""
    arr = np.asarray(levels)
    if arr.shape != (n,):
        raise ValueError(f"level vector must have shape ({n},), got {arr.shape}")
    if not np.isin(arr, range(SWITCH_LEVELS)).all():
        raise ValueError("switch levels must be in 0..5")
    return arr.astype(np.int8)
