"""The 3-color MIS process (Definition 28, Theorem 32).

Two sub-processes run in parallel on the same graph:

1. an (a, 3)-logarithmic switch with a = 512 (we use the randomized
   6-state switch of Definition 26 by default, for 18 states total);
2. a 3-color variant of the 2-state MIS process with states black, white,
   gray, updated each round t >= 1 by::

       let NC_t(u) = {c_{t-1}(v) : v ∈ N(u)}
       if c_{t-1}(u) = black and black ∈ NC_t(u):
           c_t(u) = uniformly random in {black, gray}
       elif c_{t-1}(u) = white and black ∉ NC_t(u):
           c_t(u) = uniformly random in {black, white}
       elif c_{t-1}(u) = gray and σ_{t-1}(u) = on:
           c_t(u) = white
       else:
           c_t(u) = c_{t-1}(u)

Exactly two differences from the 2-state process: a conflicted black
vertex retreats to *gray* (not white), and gray only becomes white when
the vertex's switch is on.  Gray thereby rate-limits white→black
re-entry, which is what makes the dense-G(n,p) analysis go through
(Theorem 32: poly(log n) stabilization for all 0 <= p <= 1).

Coin order per round: the main process draws φ_t = ``bits(n)`` first,
then the switch (if randomized) draws its ``bernoulli(n, ζ)``.  The
switch value used by the color update in round t is σ_{t-1}, i.e. the
value *before* the switch advances — matching Definition 28.
"""

from __future__ import annotations

import numpy as np

from repro.core.frontier import resolve_engine
from repro.core.process import MISProcess
from repro.core.states import BLACK, GRAY, WHITE, validate_three_color
from repro.core.switch import (
    DEFAULT_A,
    RandomizedLogSwitch,
    SwitchProcess,
)
from repro.graphs.graph import Graph
from repro.sim.rng import CoinSource


def resolve_three_color_init(
    init: np.ndarray | str | None,
    n: int,
    coins: CoinSource,
) -> np.ndarray:
    """Resolve an initial 3-color configuration.

    ``"random"`` draws two bit arrays and maps the four outcomes to
    {black, white, gray, white} — i.e. P[black] = P[gray] = 1/4,
    P[white] = 1/2.  Any distribution is acceptable for an *arbitrary*
    initialization; this one exercises all three states.
    """
    if init is None or (isinstance(init, str) and init == "random"):
        b0 = coins.bits(n)  # repro-lint: disable=coin-purity (documented init-time draw)
        b1 = coins.bits(n)  # repro-lint: disable=coin-purity (documented init-time draw)
        out = np.full(n, WHITE, dtype=np.int8)
        out[b0 & b1] = BLACK
        out[b0 & ~b1] = GRAY
        return out
    if isinstance(init, str):
        mapping = {
            "all_black": BLACK,
            "all_white": WHITE,
            "all_gray": GRAY,
        }
        if init in mapping:
            return np.full(n, mapping[init], dtype=np.int8)
        raise ValueError(f"unknown init spec {init!r}")
    return validate_three_color(init, n)


class ThreeColorMIS(MISProcess):
    """Vectorized implementation of the 3-color MIS process.

    Parameters
    ----------
    graph, coins, backend:
        See :class:`~repro.core.process.MISProcess`.
    init:
        Initial colors: int8 array over {WHITE, GRAY, BLACK}, or
        ``"random"`` / ``"all_black"`` / ``"all_white"`` / ``"all_gray"``.
    switch:
        A :class:`~repro.core.switch.SwitchProcess` to use, or ``None``
        to create the paper's randomized switch with parameter ``a``.
    a:
        Switch parameter when ``switch`` is ``None`` (Definition 28 uses
        a = 512, giving ζ = 4/a = 2^-7 and 18 states total).
    engine:
        Accepted for interface uniformity with the 2-/3-state
        processes and the batched entry points (validated and stored),
        but the 3-color process always runs the memoized full path:
        its switch levels diffuse a ``max`` over *every* closed
        neighbourhood each round, so there is no small changed set for
        an incremental engine to exploit.
    """

    name = "3-color"
    state_count = 18  # 3 colors x 6 switch levels

    def __init__(
        self,
        graph: Graph,
        coins: CoinSource | int | np.random.Generator | None = None,
        init: np.ndarray | str | None = None,
        switch: SwitchProcess | None = None,
        a: float = DEFAULT_A,
        backend: str = "auto",
        engine: str = "auto",
    ) -> None:
        super().__init__(graph, coins, backend)
        self.colors = resolve_three_color_init(init, self.n, self.coins)
        if switch is None:
            switch = RandomizedLogSwitch(
                graph, coins=self.coins, zeta=4.0 / a, ops=self.ops
            )  # repro-lint: disable=coin-flow (documented init-time draw; callers not passing a switch opt into its default init)
        self.switch = switch
        self.a = a
        self.engine = resolve_engine(engine)

    # ------------------------------------------------------------------
    def _state_token(self) -> object:
        # The stability protocol's reductions depend on colors only
        # (the switch levels never enter black/stable/covered masks).
        return self.colors

    def _advance(self) -> None:
        colors = self.colors
        black = colors == BLACK
        white = colors == WHITE
        gray = colors == GRAY
        has_black_nbr = self._aggregate(
            "exists_black", lambda: self.ops.exists(black)
        )
        sigma = self.switch.sigma()  # σ_{t-1}

        conflicted_black = black & has_black_nbr
        lonely_white = white & ~has_black_nbr
        waking_gray = gray & sigma

        phi = self.coins.bits(self.n)
        new_colors = colors.copy()
        # Conflicted black → coin ? black : gray.
        new_colors[conflicted_black & ~phi] = GRAY
        # Lonely white → coin ? black : white.
        new_colors[lonely_white & phi] = BLACK
        # Gray with switch on → white.
        new_colors[waking_gray] = WHITE
        self.colors = new_colors
        self.switch.step()

    # ------------------------------------------------------------------
    def black_mask(self) -> np.ndarray:
        return self.colors == BLACK

    def gray_mask(self) -> np.ndarray:
        """``Γ_t``: the gray vertices."""
        return self.colors == GRAY

    def white_mask(self) -> np.ndarray:
        """``W_t``: the white vertices."""
        return self.colors == WHITE

    def active_mask(self) -> np.ndarray:
        """``A_t``: black with black neighbour, or white with none.

        Gray vertices are never active (they are treated like non-active
        white vertices, §5.2).
        """
        black = self.colors == BLACK
        white = self.colors == WHITE
        has_black_nbr = self._aggregate(
            "exists_black", lambda: self.ops.exists(black)
        )
        return (black & has_black_nbr) | (white & ~has_black_nbr)

    def state_vector(self) -> np.ndarray:
        return self.colors.copy()

    def full_state_vector(self) -> np.ndarray:
        """Colors and switch levels stacked as an ``(2, n)`` array.

        Only available when the switch is a
        :class:`~repro.core.switch.RandomizedLogSwitch`.
        """
        if not isinstance(self.switch, RandomizedLogSwitch):
            raise TypeError("full state requires the randomized switch")
        return np.stack([self.colors.copy(), self.switch.levels.copy()])

    def corrupt(self, states: np.ndarray) -> None:
        self.colors = validate_three_color(states, self.n)
        self._state_changed()

    def corrupt_switch(self, levels: np.ndarray) -> None:
        """Corrupt the switch levels (requires the randomized switch)."""
        if not isinstance(self.switch, RandomizedLogSwitch):
            raise TypeError("switch corruption requires the randomized switch")
        self.switch.corrupt(levels)
