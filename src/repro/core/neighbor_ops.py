"""Neighbourhood aggregation backends for the vectorized engines.

Every update rule in the paper depends on a vertex's neighbourhood only
through three aggregates:

* ``count(mask)``   — ``|N(u) ∩ mask|`` (how many neighbours are black, ...)
* ``exists(mask)``  — whether some neighbour is in ``mask``
* ``max_closed(v)`` — ``max_{w ∈ N+(u)} v[w]`` (used by the switch rule)

plus one *incremental* primitive, ``apply_count_delta(counts, up,
down)``, which scatter-updates a persistent count array along only the
edges incident to a changed vertex set (the frontier engine of
:mod:`repro.core.frontier`).

Four backends implement the interface:

* :class:`DenseNeighborOps`   — int8 adjacency matrix + matmul; fastest
  for small or dense graphs.
* :class:`BitsetNeighborOps`  — uint64 bit-packed adjacency rows +
  popcount; 8× less memory traffic than int8 matrices, fastest in the
  mid-size dense regime where those blow the cache.
* :class:`SparseNeighborOps`  — scipy CSR matvec; fastest for large
  sparse graphs.
* :class:`AdjListNeighborOps` — pure-python loops; the readable reference
  used for cross-checking.

:func:`make_neighbor_ops` picks a backend from the graph's size/density;
the ablation benchmark ``bench_ablation_backends.py`` quantifies the
choice.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.graphs.graph import Graph

#: Densest n for which the dense backend is considered by "auto".
_DENSE_MAX_N = 4096
#: Minimum density for which dense wins over sparse at large n.
_DENSE_MIN_DENSITY = 0.02
#: Largest n for which the bitset backend is considered by "auto" (above
#: this even the packed rows outgrow the cache and CSR wins).
_BITSET_MAX_N = 32768
#: Minimum density for which bitset beats sparse in its size window
#: (below this CSR touches fewer bytes than the n²/8-bit rows).
_BITSET_MIN_DENSITY = 0.10

def gather_neighbors(
    indptr: np.ndarray, indices: np.ndarray, vertices: np.ndarray
) -> np.ndarray:
    """Concatenated neighbour lists of ``vertices`` (with multiplicity).

    Vectorized CSR slice gather: equivalent to
    ``np.concatenate([indices[indptr[v]:indptr[v + 1]] for v in vertices])``
    with no per-vertex Python loop.  The frontier engine
    (:mod:`repro.core.frontier`) uses this to find the scatter targets
    of a changed vertex set.

    The flat index array is built as a cumulative walk — ``+1`` inside
    each CSR run, a jump to the next run's start at each boundary —
    which benchmarks ~2x faster than the textbook
    ``arange + repeat(offsets)`` construction (``np.repeat`` over the
    run lengths is the slow part).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        return indices[:0]
    starts = indptr[vertices].astype(np.int64, copy=False)
    lens = indptr[vertices + 1].astype(np.int64, copy=False) - starts
    nonempty = lens > 0
    if not nonempty.all():  # drop empty runs: keeps boundaries unique
        starts = starts[nonempty]
        lens = lens[nonempty]
        if starts.size == 0:
            return indices[:0]
    ends = np.cumsum(lens, dtype=np.int64)
    total = int(ends[-1])
    steps = np.ones(total, dtype=np.int64)
    steps[0] = starts[0]
    if starts.size > 1:
        steps[ends[:-1]] = starts[1:] - starts[:-1] - lens[:-1] + 1
    return indices[np.cumsum(steps, dtype=np.int64)]


if hasattr(np, "bitwise_count"):  # numpy >= 2.0
    def _popcount(a: np.ndarray) -> np.ndarray:
        """Per-element population count of a uint64 array."""
        return np.bitwise_count(a)
else:  # pragma: no cover - exercised only on old numpy
    _POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def _popcount(a: np.ndarray) -> np.ndarray:
        b = np.ascontiguousarray(a).view(np.uint8)
        return (
            _POP8[b]
            .reshape(a.shape + (8,))
            .sum(axis=-1, dtype=np.uint8)
        )


class NeighborOps:
    """Abstract neighbourhood-aggregation interface (see module docs)."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.n = graph.n

    def count(self, mask: np.ndarray) -> np.ndarray:
        """``out[u] = |N(u) ∩ {v : mask[v]}|`` as an int array."""
        raise NotImplementedError

    def exists(self, mask: np.ndarray) -> np.ndarray:
        """``out[u] = (N(u) ∩ mask != ∅)`` as a boolean array."""
        return self.count(mask) > 0

    def degrees(self) -> np.ndarray:
        """Current per-vertex degree sequence (callers must not mutate).

        Static backends serve the graph's cached degrees; the dynamic
        overlay backend (:mod:`repro.dynamic.overlay`) overrides this
        with the live, churn-adjusted sequence so frontier cost
        estimates track the mutable topology.
        """
        return self.graph.degrees()

    def volume(self) -> int:
        """Current directed edge volume ``2m`` (one full-reduction's cost)."""
        return int(self.graph.indices.shape[0])

    def gather(self, vertices: np.ndarray) -> np.ndarray:
        """Concatenated current neighbour lists (with multiplicity).

        The frontier engine routes its neighbour gathers through this
        hook (instead of reading ``graph.indptr``/``indices`` directly)
        so dynamic backends can splice their delta log in.
        """
        return gather_neighbors(self.graph.indptr, self.graph.indices, vertices)

    def _validate_masks(self, masks: np.ndarray) -> np.ndarray:
        """Coerce and shape-check an ``(R, n)`` replica-mask matrix."""
        masks = np.asarray(masks)
        if masks.ndim != 2 or masks.shape[1] != self.n:
            raise ValueError(
                f"masks must have shape (R, {self.n}), got {masks.shape}"
            )
        return masks

    def count_batch(self, masks: np.ndarray) -> np.ndarray:
        """Batched :meth:`count` over ``R`` replica masks at once.

        ``masks`` has shape ``(R, n)``; the result ``out`` has the same
        shape with ``out[r, u] = |N(u) ∩ {v : masks[r, v]}|``.  Backends
        override this with a single matrix product, which is what makes
        the batched trial engine (:class:`repro.core.batched.BatchedTwoStateMIS`)
        fast; the generic fallback loops over rows.
        """
        masks = self._validate_masks(masks)
        if masks.shape[0] == 0:
            return np.zeros(masks.shape, dtype=np.int64)
        return np.stack([self.count(row) for row in masks])

    def exists_batch(self, masks: np.ndarray) -> np.ndarray:
        """Batched :meth:`exists`: ``out[r, u] = (N(u) ∩ masks[r] != ∅)``."""
        return self.count_batch(masks) > 0

    def apply_count_delta(
        self,
        counts: np.ndarray,
        up: np.ndarray | None,
        down: np.ndarray | None,
    ) -> np.ndarray:
        """Scatter-update neighbour counts along the edges of a delta set.

        Applies ``counts[u] += |N(u) ∩ up| - |N(u) ∩ down|`` in place by
        gathering the CSR neighbour lists of ``up`` / ``down`` and
        scatter-adding them, touching only ``vol(up) + vol(down)`` edges
        instead of all ``2m``.  This is the count-delta primitive behind
        the incremental frontier engine (:mod:`repro.core.frontier`).

        Tiny deltas scatter with ``np.add.at`` (O(vol), ~70ns/edge);
        larger ones histogram with ``np.bincount`` + one vector add
        (O(n + vol), ~1.3ns/entry) — measured break-even near
        ``vol ≈ n/50``, split at ``n/64``.

        Returns the concatenated gathered neighbour array (the scatter
        targets, with multiplicity) so callers can cheaply locate every
        entry of ``counts`` that may have changed.
        """
        graph = self.graph
        n = self.n
        nbrs_up = nbrs_down = None
        if up is not None and len(up):
            nbrs_up = gather_neighbors(graph.indptr, graph.indices, up)
        if down is not None and len(down):
            nbrs_down = gather_neighbors(graph.indptr, graph.indices, down)
        up_size = 0 if nbrs_up is None else nbrs_up.size
        down_size = 0 if nbrs_down is None else nbrs_down.size
        if up_size and down_size and up_size * 64 >= n and down_size * 64 >= n:
            # Both signs are bincount-sized: one histogram over a
            # doubled index range replaces two length-n histograms
            # (+ side at [0, n), − side offset to [n, 2n)).
            both = np.concatenate(
                (nbrs_up, nbrs_down + np.int64(n))
            )
            hist = np.bincount(both, minlength=2 * n)
            np.add(counts, hist[:n], out=counts, casting="unsafe")
            np.subtract(counts, hist[n:], out=counts, casting="unsafe")
        else:
            for nbrs, sign in ((nbrs_up, 1), (nbrs_down, -1)):
                if nbrs is None or nbrs.size == 0:
                    continue
                if nbrs.size * 64 < n:
                    if sign > 0:
                        np.add.at(counts, nbrs, 1)
                    else:
                        np.subtract.at(counts, nbrs, 1)
                else:
                    delta = np.bincount(nbrs, minlength=n)
                    if sign > 0:
                        np.add(counts, delta, out=counts, casting="unsafe")
                    else:
                        np.subtract(
                            counts, delta, out=counts, casting="unsafe"
                        )
        if up_size and down_size:
            return np.concatenate((nbrs_up, nbrs_down))
        if up_size:
            return nbrs_up
        if down_size:
            return nbrs_down
        return graph.indices[:0]

    def max_closed(self, values: np.ndarray) -> np.ndarray:
        """``out[u] = max over N+(u) of values[w]``.

        Generic implementation via level-set probes: assumes values take
        a small number of distinct non-negative integer levels (true for
        switch levels 0..5).  Backends may override with something
        faster.
        """
        values = np.asarray(values)
        out = values.astype(np.int64).copy()  # self is included in N+.
        # The minimum level needs no probe: ``exists(values >= min)`` is
        # all-True wherever a neighbour exists, and ``out`` already
        # starts >= min everywhere, so the write would be a no-op.
        # reduction-budget: 1
        for level in np.unique(values)[1:]:
            has = self.exists(values >= level)
            out[has & (out < level)] = level
        return out

    def max_closed_batch(self, values: np.ndarray) -> np.ndarray:
        """Batched :meth:`max_closed` over ``R`` replica value rows.

        ``values`` has shape ``(R, n)``; the result has the same shape
        with ``out[r, u] = max over N+(u) of values[r, w]``.  Implemented
        with the same level-set probes as :meth:`max_closed`, but each
        probe is one batched ``exists`` reduction over all replicas —
        the aggregate behind the batched randomized-switch engine
        (:class:`repro.core.batched.BatchedThreeColorMIS`).
        """
        values = self._validate_masks(np.asarray(values))
        out = values.astype(np.int64).copy()  # self is included in N+.
        # Minimum level skipped for the same reason as in max_closed:
        # one fewer batched reduction per switch round, same output.
        # reduction-budget: 1
        for level in np.unique(values)[1:]:
            has = self.exists_batch(values >= level)
            out[has & (out < level)] = level
        return out


class DenseNeighborOps(NeighborOps):
    """Dense adjacency-matrix backend (int8 matrix, int32 matvec)."""

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        self._a = graph.adjacency_dense()
        self._a_f32: np.ndarray | None = None  # lazy BLAS copy for batches

    def count(self, mask: np.ndarray) -> np.ndarray:
        return self._a @ np.asarray(mask, dtype=np.int32)

    def count_batch(self, masks: np.ndarray) -> np.ndarray:
        # A is symmetric, so right-multiplying the (R, n) mask matrix
        # computes every replica's neighbour counts in one matmul.  The
        # product runs in float32 to hit BLAS (numpy integer matmul is a
        # generic loop): every partial sum is an integer <= n < 2^24, so
        # float32 arithmetic is exact and the cast back is lossless.
        masks = self._validate_masks(masks)
        if self._a_f32 is None:
            self._a_f32 = self._a.astype(np.float32)
        return (masks.astype(np.float32) @ self._a_f32).astype(np.int32)


class SparseNeighborOps(NeighborOps):
    """scipy CSR backend for large sparse graphs."""

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        self._a = graph.adjacency_csr_int32()

    def count(self, mask: np.ndarray) -> np.ndarray:
        return self._a.dot(np.asarray(mask, dtype=np.int32))

    def count_batch(self, masks: np.ndarray) -> np.ndarray:
        # One CSR × dense (n, R) product serves all replicas (A = Aᵀ).
        masks = self._validate_masks(masks)
        return self._a.dot(masks.astype(np.int32).T).T


class BitsetNeighborOps(NeighborOps):
    """Bit-packed adjacency backend (uint64 rows + popcount).

    Each adjacency row is packed into ``⌈n/64⌉`` uint64 words
    (:meth:`repro.graphs.graph.Graph.adjacency_bitset`), so a
    neighbourhood count is ``popcount(row & packed_mask)`` — one bit of
    memory traffic per potential neighbour instead of one byte for the
    int8 dense matrix.  That 8× density is what makes this backend win
    in the mid-size dense regime (n in the thousands-to-tens-of-
    thousands, density above a few percent) where the int8 matrix
    no longer fits in cache but CSR's indirection overhead still hurts.
    """

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        self._bits = graph.adjacency_bitset()
        self._words = self._bits.shape[1]

    def _pack(self, masks: np.ndarray) -> np.ndarray:
        """Pack boolean masks ``(..., n)`` into uint64 words ``(..., W)``."""
        masks = np.ascontiguousarray(masks, dtype=bool)
        packed8 = np.packbits(masks, axis=-1, bitorder="little")
        pad = self._words * 8 - packed8.shape[-1]
        if pad:
            width = [(0, 0)] * (packed8.ndim - 1) + [(0, pad)]
            packed8 = np.pad(packed8, width)
        if sys.byteorder == "little":
            return packed8.view(np.uint64)
        # Big-endian fallback: assemble words explicitly.
        shifts = (8 * np.arange(8, dtype=np.uint64)).reshape(
            (1,) * (packed8.ndim - 1) + (1, 8)
        )
        words = packed8.astype(np.uint64).reshape(
            packed8.shape[:-1] + (self._words, 8)
        )
        return np.bitwise_or.reduce(words << shifts, axis=-1)

    def count(self, mask: np.ndarray) -> np.ndarray:
        mask = np.asarray(mask)
        if mask.dtype != bool:
            mask = mask != 0
        packed = self._pack(mask)  # (W,)
        return _popcount(self._bits & packed).sum(axis=-1, dtype=np.int64)

    def count_batch(self, masks: np.ndarray) -> np.ndarray:
        masks = self._validate_masks(masks)
        if masks.dtype != bool:
            masks = masks != 0
        if masks.shape[0] == 0:
            return np.zeros(masks.shape, dtype=np.int64)
        packed = self._pack(masks)  # (R, W)
        out = np.zeros((masks.shape[0], self.n), dtype=np.int64)
        # Word-at-a-time outer AND keeps the temporaries at (R, n)
        # instead of materializing an (R, n, W) cube.
        for w in range(self._words):
            out += _popcount(
                packed[:, w, None] & self._bits[None, :, w]
            )
        return out


class AdjListNeighborOps(NeighborOps):
    """Pure-python adjacency-list backend (reference semantics)."""

    def count(self, mask: np.ndarray) -> np.ndarray:
        mask = np.asarray(mask, dtype=bool)
        out = np.zeros(self.n, dtype=np.int64)
        for u in range(self.n):
            out[u] = sum(1 for v in self.graph.neighbors(u) if mask[v])
        return out

    def max_closed(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        out = np.empty(self.n, dtype=np.int64)
        for u in range(self.n):
            best = int(values[u])
            for v in self.graph.neighbors(u):
                if values[v] > best:
                    best = int(values[v])
            out[u] = best
        return out


def make_neighbor_ops(graph: Graph, backend: str = "auto") -> NeighborOps:
    """Construct a neighbourhood-ops backend.

    Parameters
    ----------
    graph:
        The graph to aggregate over.
    backend:
        ``"dense"``, ``"bitset"``, ``"sparse"``, ``"adjlist"``, or
        ``"auto"`` (dense for small/dense graphs, bitset for mid-size
        dense graphs where the int8 matrix outgrows the cache, sparse
        otherwise).
    """
    if backend == "dense":
        return DenseNeighborOps(graph)
    if backend == "bitset":
        return BitsetNeighborOps(graph)
    if backend == "sparse":
        return SparseNeighborOps(graph)
    if backend == "adjlist":
        return AdjListNeighborOps(graph)
    if backend != "auto":
        raise ValueError(f"unknown backend {backend!r}")
    if graph.n <= 512:
        return DenseNeighborOps(graph)
    if graph.n <= _DENSE_MAX_N and graph.density() >= _DENSE_MIN_DENSITY:
        return DenseNeighborOps(graph)
    if graph.n <= _BITSET_MAX_N and graph.density() >= _BITSET_MIN_DENSITY:
        return BitsetNeighborOps(graph)
    return SparseNeighborOps(graph)
