"""Neighbourhood aggregation backends for the vectorized engines.

Every update rule in the paper depends on a vertex's neighbourhood only
through three aggregates:

* ``count(mask)``   — ``|N(u) ∩ mask|`` (how many neighbours are black, ...)
* ``exists(mask)``  — whether some neighbour is in ``mask``
* ``max_closed(v)`` — ``max_{w ∈ N+(u)} v[w]`` (used by the switch rule)

Three backends implement the interface:

* :class:`DenseNeighborOps`   — int8 adjacency matrix + matmul; fastest
  for small or dense graphs.
* :class:`SparseNeighborOps`  — scipy CSR matvec; fastest for large
  sparse graphs.
* :class:`AdjListNeighborOps` — pure-python loops; the readable reference
  used for cross-checking.

:func:`make_neighbor_ops` picks a backend from the graph's size/density;
the ablation benchmark ``bench_ablation_backends.py`` quantifies the
choice.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph

#: Densest n for which the dense backend is considered by "auto".
_DENSE_MAX_N = 4096
#: Minimum density for which dense wins over sparse at large n.
_DENSE_MIN_DENSITY = 0.02


class NeighborOps:
    """Abstract neighbourhood-aggregation interface (see module docs)."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.n = graph.n

    def count(self, mask: np.ndarray) -> np.ndarray:
        """``out[u] = |N(u) ∩ {v : mask[v]}|`` as an int array."""
        raise NotImplementedError

    def exists(self, mask: np.ndarray) -> np.ndarray:
        """``out[u] = (N(u) ∩ mask != ∅)`` as a boolean array."""
        return self.count(mask) > 0

    def _validate_masks(self, masks: np.ndarray) -> np.ndarray:
        """Coerce and shape-check an ``(R, n)`` replica-mask matrix."""
        masks = np.asarray(masks)
        if masks.ndim != 2 or masks.shape[1] != self.n:
            raise ValueError(
                f"masks must have shape (R, {self.n}), got {masks.shape}"
            )
        return masks

    def count_batch(self, masks: np.ndarray) -> np.ndarray:
        """Batched :meth:`count` over ``R`` replica masks at once.

        ``masks`` has shape ``(R, n)``; the result ``out`` has the same
        shape with ``out[r, u] = |N(u) ∩ {v : masks[r, v]}|``.  Backends
        override this with a single matrix product, which is what makes
        the batched trial engine (:class:`repro.core.batched.BatchedTwoStateMIS`)
        fast; the generic fallback loops over rows.
        """
        masks = self._validate_masks(masks)
        if masks.shape[0] == 0:
            return np.zeros(masks.shape, dtype=np.int64)
        return np.stack([self.count(row) for row in masks])

    def exists_batch(self, masks: np.ndarray) -> np.ndarray:
        """Batched :meth:`exists`: ``out[r, u] = (N(u) ∩ masks[r] != ∅)``."""
        return self.count_batch(masks) > 0

    def max_closed(self, values: np.ndarray) -> np.ndarray:
        """``out[u] = max over N+(u) of values[w]``.

        Generic implementation via level-set probes: assumes values take
        a small number of distinct non-negative integer levels (true for
        switch levels 0..5).  Backends may override with something
        faster.
        """
        values = np.asarray(values)
        out = values.astype(np.int64).copy()  # self is included in N+.
        for level in np.unique(values):
            has = self.exists(values >= level)
            out[has & (out < level)] = level
        return out

    def max_closed_batch(self, values: np.ndarray) -> np.ndarray:
        """Batched :meth:`max_closed` over ``R`` replica value rows.

        ``values`` has shape ``(R, n)``; the result has the same shape
        with ``out[r, u] = max over N+(u) of values[r, w]``.  Implemented
        with the same level-set probes as :meth:`max_closed`, but each
        probe is one batched ``exists`` reduction over all replicas —
        the aggregate behind the batched randomized-switch engine
        (:class:`repro.core.batched.BatchedThreeColorMIS`).
        """
        values = self._validate_masks(np.asarray(values))
        out = values.astype(np.int64).copy()  # self is included in N+.
        for level in np.unique(values):
            has = self.exists_batch(values >= level)
            out[has & (out < level)] = level
        return out


class DenseNeighborOps(NeighborOps):
    """Dense adjacency-matrix backend (int8 matrix, int32 matvec)."""

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        self._a = graph.adjacency_dense()
        self._a_f32: np.ndarray | None = None  # lazy BLAS copy for batches

    def count(self, mask: np.ndarray) -> np.ndarray:
        return self._a @ np.asarray(mask, dtype=np.int32)

    def count_batch(self, masks: np.ndarray) -> np.ndarray:
        # A is symmetric, so right-multiplying the (R, n) mask matrix
        # computes every replica's neighbour counts in one matmul.  The
        # product runs in float32 to hit BLAS (numpy integer matmul is a
        # generic loop): every partial sum is an integer <= n < 2^24, so
        # float32 arithmetic is exact and the cast back is lossless.
        masks = self._validate_masks(masks)
        if self._a_f32 is None:
            self._a_f32 = self._a.astype(np.float32)
        return (masks.astype(np.float32) @ self._a_f32).astype(np.int32)


class SparseNeighborOps(NeighborOps):
    """scipy CSR backend for large sparse graphs."""

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        self._a = graph.adjacency_csr().astype(np.int32)

    def count(self, mask: np.ndarray) -> np.ndarray:
        return self._a.dot(np.asarray(mask, dtype=np.int32))

    def count_batch(self, masks: np.ndarray) -> np.ndarray:
        # One CSR × dense (n, R) product serves all replicas (A = Aᵀ).
        masks = self._validate_masks(masks)
        return self._a.dot(masks.astype(np.int32).T).T


class AdjListNeighborOps(NeighborOps):
    """Pure-python adjacency-list backend (reference semantics)."""

    def count(self, mask: np.ndarray) -> np.ndarray:
        mask = np.asarray(mask, dtype=bool)
        out = np.zeros(self.n, dtype=np.int64)
        for u in range(self.n):
            out[u] = sum(1 for v in self.graph.neighbors(u) if mask[v])
        return out

    def max_closed(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        out = np.empty(self.n, dtype=np.int64)
        for u in range(self.n):
            best = int(values[u])
            for v in self.graph.neighbors(u):
                if values[v] > best:
                    best = int(values[v])
            out[u] = best
        return out


def make_neighbor_ops(graph: Graph, backend: str = "auto") -> NeighborOps:
    """Construct a neighbourhood-ops backend.

    Parameters
    ----------
    graph:
        The graph to aggregate over.
    backend:
        ``"dense"``, ``"sparse"``, ``"adjlist"``, or ``"auto"`` (choose
        dense for small/dense graphs, sparse otherwise).
    """
    if backend == "dense":
        return DenseNeighborOps(graph)
    if backend == "sparse":
        return SparseNeighborOps(graph)
    if backend == "adjlist":
        return AdjListNeighborOps(graph)
    if backend != "auto":
        raise ValueError(f"unknown backend {backend!r}")
    if graph.n <= 512:
        return DenseNeighborOps(graph)
    if graph.n <= _DENSE_MAX_N and graph.density() >= _DENSE_MIN_DENSITY:
        return DenseNeighborOps(graph)
    return SparseNeighborOps(graph)
