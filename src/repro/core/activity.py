"""Analytic notation of §2 and §4.1 as standalone functions.

These operate on explicit state vectors (not process objects) so the
experiments can analyze recorded trajectories:

* ``B_t``/``W_t`` — black/white sets (here: boolean masks),
* ``A_t`` — active vertices (:func:`active_set`),
* ``A^k_t`` — k-active vertices (:func:`k_active_set`),
* ``I_t`` — stable black vertices (:func:`stable_black_set`),
* ``V_t = V \\ N+(I_t)`` — non-stable vertices (:func:`unstable_set`),
* ``θ_u(i)`` — equation (3) (:func:`theta_u`, exact for small i).

All functions accept a graph plus a boolean "black" mask, so they work
uniformly for the 2-state process and for the black sets of the 3-state
and 3-color processes.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.graphs.graph import Graph


def _black_neighbor_counts(graph: Graph, black: np.ndarray) -> np.ndarray:
    black = np.asarray(black, dtype=bool)
    if black.shape != (graph.n,):
        raise ValueError(
            f"black mask must have shape ({graph.n},), got {black.shape}"
        )
    counts = np.zeros(graph.n, dtype=np.int64)
    for u in graph.vertices():
        counts[u] = sum(1 for v in graph.neighbors(u) if black[v])
    return counts


def active_set(graph: Graph, black: np.ndarray) -> np.ndarray:
    """``A_t``: black with a black neighbour, or white with none.

    Returns a boolean mask.  Note: for 3-color trajectories use the
    process's own ``active_mask`` — gray vertices are non-black but are
    *not* active, whereas this mask treats every non-black vertex as
    white.
    """
    black = np.asarray(black, dtype=bool)
    counts = _black_neighbor_counts(graph, black)
    return np.where(black, counts > 0, counts == 0)


def k_active_set(graph: Graph, black: np.ndarray, k: int) -> np.ndarray:
    """``A^k_t``: active vertices with at most ``k`` active neighbours."""
    active = active_set(graph, black)
    active_nbr_counts = np.zeros(graph.n, dtype=np.int64)
    for u in graph.vertices():
        active_nbr_counts[u] = sum(
            1 for v in graph.neighbors(u) if active[v]
        )
    return active & (active_nbr_counts <= k)


def stable_black_set(graph: Graph, black: np.ndarray) -> np.ndarray:
    """``I_t``: black vertices with no black neighbour (independent)."""
    black = np.asarray(black, dtype=bool)
    counts = _black_neighbor_counts(graph, black)
    return black & (counts == 0)


def unstable_set(graph: Graph, black: np.ndarray) -> np.ndarray:
    """``V_t = V \\ N+(I_t)``: vertices not dominated by stable blacks."""
    stable = stable_black_set(graph, black)
    covered = stable.copy()
    for u in graph.vertices():
        if not covered[u] and any(stable[v] for v in graph.neighbors(u)):
            covered[u] = True
    return ~covered


def theta_u(graph: Graph, u: int, i: int, exact_limit: int = 20) -> int:
    """``θ_u(i)`` from equation (3): max over S ⊆ N(u), |S| <= i of
    ``|N(u) ∩ N+(S)|``.

    Exact by enumeration when ``C(deg(u), min(i, deg(u)))`` is at most
    about ``2^exact_limit``; otherwise falls back to the greedy
    max-coverage value, which lower-bounds the true θ (and equals it up
    to the (1 - 1/e) guarantee).  The experiments only use θ on
    low-degree vertices, where the exact branch applies.
    """
    nbrs = list(graph.neighbors(u))
    d = len(nbrs)
    if i <= 0 or d == 0:
        return 0
    i = min(i, d)
    nbr_set = set(nbrs)

    def coverage(subset: tuple[int, ...]) -> int:
        covered: set[int] = set()
        for v in subset:
            covered.add(v)
            covered.update(graph.neighbors(v))
        return len(covered & nbr_set)

    # Count subsets to decide exact vs greedy.
    import math

    total = sum(math.comb(d, j) for j in range(1, i + 1))
    if total <= (1 << exact_limit):
        best = 0
        for j in range(1, i + 1):
            for subset in itertools.combinations(nbrs, j):
                best = max(best, coverage(subset))
            if best == d:
                return best
        return best
    # Greedy fallback (lower bound).
    uncovered = set(nbr_set)
    chosen: list[int] = []
    while len(chosen) < i and uncovered:
        best_v, best_gain = None, 0
        for v in nbrs:
            gain = len(uncovered & (set(graph.neighbors(v)) | {v}))
            if gain > best_gain:
                best_v, best_gain = v, gain
        if best_v is None:
            break
        uncovered -= set(graph.neighbors(best_v)) | {best_v}
        chosen.append(best_v)
    return d - len(uncovered)
