"""MIS verification utilities.

The correctness claim underlying every theorem is: *once the process
stabilizes, the black set is a maximal independent set*.  These functions
check independence and maximality of arbitrary vertex sets, enumerate
violations, and provide an assertion helper used across the test suite
and the experiment harness.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.graphs.graph import Graph


def _as_mask(graph: Graph, vertices: Iterable[int] | np.ndarray) -> np.ndarray:
    arr = np.asarray(vertices)
    if arr.dtype == bool:
        if arr.shape != (graph.n,):
            raise ValueError(
                f"boolean mask must have shape ({graph.n},), got {arr.shape}"
            )
        return arr
    mask = np.zeros(graph.n, dtype=bool)
    if arr.size:
        idx = arr.astype(np.int64)
        if idx.min() < 0 or idx.max() >= graph.n:
            raise ValueError("vertex index out of range")
        mask[idx] = True
    return mask


def independence_violations(
    graph: Graph, vertices: Iterable[int] | np.ndarray
) -> list[tuple[int, int]]:
    """Edges with both endpoints in the set (empty iff independent)."""
    mask = _as_mask(graph, vertices)
    us, vs = graph.edge_arrays()
    bad = mask[us] & mask[vs]
    return list(zip(us[bad].tolist(), vs[bad].tolist()))


def maximality_violations(
    graph: Graph, vertices: Iterable[int] | np.ndarray
) -> list[int]:
    """Vertices outside the set with no neighbour inside (empty iff maximal).

    Only meaningful when the set is independent.
    """
    mask = _as_mask(graph, vertices)
    if graph.n == 0:
        return []
    counts = graph.adjacency_csr().dot(mask.astype(np.int32))
    return np.flatnonzero(~mask & (counts == 0)).tolist()


def is_independent_set(
    graph: Graph, vertices: Iterable[int] | np.ndarray
) -> bool:
    """Whether the set is independent."""
    return not independence_violations(graph, vertices)


def is_maximal_independent_set(
    graph: Graph, vertices: Iterable[int] | np.ndarray
) -> bool:
    """Whether the set is a maximal independent set."""
    return (
        not independence_violations(graph, vertices)
        and not maximality_violations(graph, vertices)
    )


def assert_valid_mis(
    graph: Graph, vertices: Iterable[int] | np.ndarray
) -> None:
    """Raise ``AssertionError`` with diagnostics if the set is not an MIS."""
    ind = independence_violations(graph, vertices)
    if ind:
        raise AssertionError(
            f"independence violated on {len(ind)} edge(s), e.g. {ind[:5]}"
        )
    maxi = maximality_violations(graph, vertices)
    if maxi:
        raise AssertionError(
            f"maximality violated at {len(maxi)} vertex(ices), "
            f"e.g. {maxi[:5]}"
        )


def greedy_mis_size_bounds(graph: Graph) -> tuple[int, int]:
    """Crude lower/upper bounds on any MIS size.

    Lower: n / (Δ + 1) (every MIS is dominating).  Upper: n minus a crude
    matching-based bound.  Used by tests as sanity envelopes for the
    MIS sizes the processes produce.
    """
    n = graph.n
    if n == 0:
        return (0, 0)
    delta = graph.max_degree()
    lower = max(1, -(-n // (delta + 1)))  # ceil
    # Greedy maximal matching: each matched edge kills at least one
    # candidate, so any independent set has size <= n - matching_size.
    matched = np.zeros(n, dtype=bool)
    matching_size = 0
    for u, v in graph.edges():
        if not matched[u] and not matched[v]:
            matched[u] = matched[v] = True
            matching_size += 1
    upper = n - matching_size
    return (lower, upper)
