"""The 3-state MIS process (Definition 5).

States: ``black1``, ``black0``, ``white``.  A vertex is *black* when its
state is black1 or black0.  The update rule, verbatim::

    let NC_t(u) = {c_{t-1}(v) : v ∈ N(u)}
    if c_{t-1}(u) = black1
       or (c_{t-1}(u) = black0 and black1 ∉ NC_t(u))
       or (c_{t-1}(u) = white and NC_t(u) = {white}):
        c_t(u) = uniformly random in {black1, black0}
    elif c_{t-1}(u) = black0:
        c_t(u) = white
    else:
        c_t(u) = c_{t-1}(u)

This variant needs no collision detection (suitable for the synchronous
stone age model): black1 plays the role of a beep, and a black0 vertex
that hears a black1 beep retreats to white.  A stable black vertex
alternates between black1 and black0 forever, so quiescence of the state
vector is *not* the stabilization criterion — coverage by stable black
vertices is (see :class:`repro.core.process.MISProcess`).

The paper does not analyze this process but conjectures it behaves at
least as well as the 2-state process; Remark 10 notes O(log n) on K_n.
Experiment E10 compares all three processes empirically.
"""

from __future__ import annotations

import numpy as np

from repro.core.frontier import FrontierAggregates, resolve_engine
from repro.core.neighbor_ops import NeighborOps
from repro.core.process import MISProcess
from repro.core.states import BLACK0, BLACK1, WHITE, validate_three_state
from repro.graphs.graph import Graph
from repro.sim.rng import CoinSource


def resolve_three_state_init(
    init: np.ndarray | str | None,
    n: int,
    coins: CoinSource,
) -> np.ndarray:
    """Resolve an initial 3-state configuration.

    ``"random"`` draws two coin arrays: the first chooses black vs white,
    the second chooses black1 vs black0 for the black vertices.
    """
    if init is None or (isinstance(init, str) and init == "random"):
        is_black = coins.bits(n)  # repro-lint: disable=coin-purity (documented init-time draw)
        is_one = coins.bits(n)  # repro-lint: disable=coin-purity (documented init-time draw)
        out = np.full(n, WHITE, dtype=np.int8)
        out[is_black & is_one] = BLACK1
        out[is_black & ~is_one] = BLACK0
        return out
    if isinstance(init, str):
        if init == "all_white":
            return np.full(n, WHITE, dtype=np.int8)
        if init == "all_black1":
            return np.full(n, BLACK1, dtype=np.int8)
        if init == "all_black0":
            return np.full(n, BLACK0, dtype=np.int8)
        raise ValueError(f"unknown init spec {init!r}")
    return validate_three_state(init, n)


class ThreeStateMIS(MISProcess):
    """Vectorized implementation of the 3-state MIS process.

    Per round, exactly one ``bits(n)`` draw is consumed: the coin that
    chooses black1 (True) vs black0 (False) for re-randomizing vertices.

    ``engine`` selects the aggregate engine (see
    :mod:`repro.core.frontier`): the frontier path maintains *two*
    persistent count arrays — black neighbours and black1 neighbours —
    scatter-updated along the changed vertices' edges.  Note that a
    stable black vertex alternates black1/black0 forever, so the black1
    deltas never fully quiesce (unlike the 2-state process); the
    changed-set volume still collapses to ``vol(I_t ∪ ...)``, well
    below the full graph on sparse instances.  Trajectories are
    bitwise-identical across engines.
    """

    name = "3-state"
    state_count = 3

    def __init__(
        self,
        graph: Graph,
        coins: CoinSource | int | np.random.Generator | None = None,
        init: np.ndarray | str | None = None,
        backend: str = "auto",
        engine: str = "auto",
        ops: "NeighborOps | None" = None,
    ) -> None:
        super().__init__(graph, coins, backend, ops=ops)
        self.states = resolve_three_state_init(init, self.n, self.coins)
        self.engine = resolve_engine(engine)

    # ------------------------------------------------------------------
    def _state_token(self) -> object:
        return self.states

    def _frontier_aggregates(self) -> FrontierAggregates | None:
        if self.engine == "full":
            return None
        frontier = self._frontier
        if frontier is None:
            frontier = self._frontier = FrontierAggregates(
                self.graph,
                self.ops,
                adaptive=(self.engine == "auto"),
                track_aux=True,
            )
        if frontier.token is not self.states:
            states = self.states
            frontier.rebuild(
                states != WHITE, token=states, aux=(states == BLACK1)
            )
        return frontier

    def _neighbor_flags(self) -> tuple[np.ndarray, np.ndarray]:
        """``(exists(black1), exists(black))`` via the active engine."""
        frontier = self._frontier_aggregates()
        if frontier is not None:
            return frontier.aux_has, frontier.has_black
        states = self.states
        has_black1_nbr = self._aggregate(
            "exists_black1", lambda: self.ops.exists(states == BLACK1)
        )
        has_black_nbr = self._aggregate(
            "exists_black", lambda: self.ops.exists(states != WHITE)
        )
        return has_black1_nbr, has_black_nbr

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        states = self.states
        is_black1 = states == BLACK1
        is_black0 = states == BLACK0
        is_white = states == WHITE
        has_black1_nbr, has_black_nbr = self._neighbor_flags()

        randomize = (
            is_black1
            | (is_black0 & ~has_black1_nbr)
            | (is_white & ~has_black_nbr)
        )
        demote = is_black0 & ~randomize  # black0 hearing a black1 beep

        phi = self.coins.bits(self.n)
        new_states = states.copy()
        new_states[randomize & phi] = BLACK1
        new_states[randomize & ~phi] = BLACK0
        new_states[demote] = WHITE
        frontier = self._frontier_aggregates()
        if frontier is not None:
            changed = np.flatnonzero(new_states != states)
            old_black = states[changed] != WHITE
            new_black = new_states[changed] != WHITE
            old_black1 = states[changed] == BLACK1
            new_black1 = new_states[changed] == BLACK1
            frontier.advance(
                new_states != WHITE,
                up=changed[new_black & ~old_black],
                down=changed[old_black & ~new_black],
                token=new_states,
                aux_mask=new_states == BLACK1,
                aux_up=changed[new_black1 & ~old_black1],
                aux_down=changed[old_black1 & ~new_black1],
            )
        self.states = new_states

    # ------------------------------------------------------------------
    def black_mask(self) -> np.ndarray:
        return self.states != WHITE

    def active_mask(self) -> np.ndarray:
        """Vertices that will re-randomize this coming round.

        For the 3-state process, the natural analogue of ``A_t`` is the
        set of vertices whose next state is random: black1 vertices,
        black0 vertices with no black1 neighbour, and white vertices with
        all-white neighbourhoods.
        """
        is_black1 = self.states == BLACK1
        is_black0 = self.states == BLACK0
        is_white = self.states == WHITE
        has_black1_nbr, has_black_nbr = self._neighbor_flags()
        return (
            is_black1
            | (is_black0 & ~has_black1_nbr)
            | (is_white & ~has_black_nbr)
        )

    def state_vector(self) -> np.ndarray:
        return self.states.copy()

    def corrupt(self, states: np.ndarray) -> None:
        self.states = validate_three_state(states, self.n)
        self._state_changed()
