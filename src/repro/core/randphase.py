"""The RandPhase phase clock of Emek-Keren [12], generalized over D.

§1.2 and §5.1 explain that the logarithmic switch's core mechanism "is
identical to that of RandPhase for D = 3 (not 2!)" — RandPhase being the
self-stabilizing phase-clock sub-process of [12], parameterized by an
upper bound D on the graph diameter and using D + 3 states.

This module implements the general-D clock.  With D = 3 it coincides
state-for-state with :class:`repro.core.switch.RandomizedLogSwitch`
(tested), which documents precisely how the paper reuses the mechanism:
*not* as a synchronizer (the graph diameter may exceed D), but as a
local counter whose on/off dwell times are what Lemma 27 needs.

Rule (levels 0..D+2, top = D+2):

* a vertex at the top level stays there with probability 1 - ζ;
* a vertex at level 0, or a top-level vertex whose coin fires, resets
  to the top;
* every other vertex moves to ``max(level over N+(u)) - 1``.

On graphs of diameter <= D, once some vertex resets to the top, all
vertices synchronize within a constant number of rounds and then march
through levels D-1, ..., 1, 0 in lockstep — phases of expected length
D + Θ_ζ(log n).
"""

from __future__ import annotations

import numpy as np

from repro.core.neighbor_ops import NeighborOps, make_neighbor_ops
from repro.graphs.graph import Graph
from repro.sim.rng import CoinSource, as_coin_source


class RandPhaseClock:
    """General-D RandPhase phase clock (D + 3 states per vertex).

    Parameters
    ----------
    graph:
        Underlying graph.
    d:
        The clock's diameter parameter D >= 1.  Synchronization is
        guaranteed only when ``diam(graph) <= d``; the paper's insight
        is that the clock remains *useful* (as a local counter) even
        when it is not.
    coins:
        Coin source; one ``bernoulli(n, ζ)`` draw per round.
    zeta:
        Top-level reset probability, ζ ∈ (0, 1/2].
    init:
        Initial levels (ints in 0..D+2), ``"all_top"``, ``"all_zero"``,
        or ``None`` for pseudo-random levels.
    """

    def __init__(
        self,
        graph: Graph,
        d: int,
        coins: CoinSource | int | np.random.Generator | None = None,
        zeta: float = 0.125,
        init: np.ndarray | str | None = None,
        backend: str = "auto",
        ops: NeighborOps | None = None,
    ) -> None:
        if d < 1:
            raise ValueError(f"D must be >= 1, got {d}")
        if not 0.0 < zeta <= 0.5:
            raise ValueError(f"zeta must be in (0, 1/2], got {zeta}")
        self.graph = graph
        self.n = graph.n
        self.d = int(d)
        self.top = self.d + 2
        self.zeta = float(zeta)
        self.coins = as_coin_source(coins)
        self.ops = ops if ops is not None else make_neighbor_ops(graph, backend)
        self.levels = self._resolve_init(init)
        self.round = 0

    @property
    def state_count(self) -> int:
        """Number of per-vertex states: D + 3."""
        return self.top + 1

    def _resolve_init(self, init: np.ndarray | str | None) -> np.ndarray:
        if init is None or (isinstance(init, str) and init == "random"):
            # Derive pseudo-random levels from coin bits (enough bits to
            # cover 0..top; fold overflow).
            bits_needed = max(1, int(np.ceil(np.log2(self.top + 1))))
            raw = np.zeros(self.n, dtype=np.int64)
            for b in range(bits_needed):
                raw += self.coins.bits(self.n).astype(np.int64) << b  # repro-lint: disable=coin-purity (documented init-time draw)
            raw %= self.top + 1
            return raw.astype(np.int16)
        if isinstance(init, str):
            if init == "all_top":
                return np.full(self.n, self.top, dtype=np.int16)
            if init == "all_zero":
                return np.zeros(self.n, dtype=np.int16)
            raise ValueError(f"unknown init spec {init!r}")
        arr = np.asarray(init)
        if arr.shape != (self.n,):
            raise ValueError(
                f"levels must have shape ({self.n},), got {arr.shape}"
            )
        if arr.min(initial=0) < 0 or arr.max(initial=0) > self.top:
            raise ValueError(f"levels must lie in 0..{self.top}")
        return arr.astype(np.int16)

    def step(self) -> None:
        """One synchronous round of the clock."""
        levels = self.levels
        at_top = levels == self.top
        at_zero = levels == 0
        reset_coin = self.coins.bernoulli(self.n, self.zeta)
        stay_top = at_top & ~reset_coin
        reset = stay_top | at_zero
        nbr_max = self.ops.max_closed(levels)
        self.levels = np.where(
            reset, self.top, np.maximum(nbr_max - 1, 0)
        ).astype(np.int16)
        self.round += 1

    def phase_indicator(self) -> np.ndarray:
        """Boolean array: vertices currently in the counting band
        (level <= D - 1), the analogue of the switch's ``on``."""
        return self.levels <= self.d - 1

    def is_synchronized(self) -> bool:
        """Whether all vertices share one level (lockstep marching)."""
        return bool((self.levels == self.levels[0]).all())


def phase_lengths(clock: RandPhaseClock, rounds: int) -> list[int]:
    """Run the clock and measure global phase lengths.

    A *phase boundary* is a round where all vertices sit at the top
    level simultaneously after a reset.  Returns the gaps between
    consecutive boundaries observed within ``rounds`` — on diameter <= D
    graphs these are the D + Θ(log n) phases of [12].
    """
    boundaries: list[int] = []
    previous_all_top = False
    for t in range(rounds):
        all_top = bool((clock.levels == clock.top).all())
        if all_top and not previous_all_top:
            boundaries.append(t)
        previous_all_top = all_top
        clock.step()
    return [b - a for a, b in zip(boundaries, boundaries[1:])]
