"""The 2-state MIS process (Definition 4).

Each vertex has a binary state, black or white.  In each round, every
vertex whose state is inconsistent with its neighbours' — black with a
black neighbour, or white with no black neighbour — adopts a uniformly
random state.  The set of black vertices is an MIS exactly when no vertex
is active, and the process then never changes again.

The update rule, verbatim from the paper::

    let NC_t(u) = {c_{t-1}(v) : v ∈ N(u)}
    if (c_{t-1}(u) = black and black ∈ NC_t(u))
       or (c_{t-1}(u) = white and black ∉ NC_t(u)):
        c_t(u) = uniformly random in {black, white}
    else:
        c_t(u) = c_{t-1}(u)

Coin discipline: one fair coin φ_t(u) is drawn for every vertex every
round (§2.1); active vertices set their state to the coin.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.frontier import FrontierAggregates, resolve_engine
from repro.core.neighbor_ops import NeighborOps
from repro.core.process import MISProcess
from repro.core.states import validate_two_state
from repro.graphs.graph import Graph
from repro.sim.rng import CoinSource


def resolve_two_state_init(
    init: np.ndarray | str | None,
    n: int,
    coins: CoinSource,
) -> np.ndarray:
    """Resolve an initial 2-state configuration.

    ``init`` may be a boolean array (copied), one of the strings
    ``"random"`` / ``"all_black"`` / ``"all_white"``, or ``None``
    (= ``"random"``).  Random initial states consume one ``bits(n)`` draw
    from the coin source (before any round coins).
    """
    if init is None or (isinstance(init, str) and init == "random"):
        return coins.bits(n).copy()  # repro-lint: disable=coin-purity (documented init-time draw)
    if isinstance(init, str):
        if init == "all_black":
            return np.ones(n, dtype=bool)
        if init == "all_white":
            return np.zeros(n, dtype=bool)
        raise ValueError(f"unknown init spec {init!r}")
    return validate_two_state(init, n)


class TwoStateMIS(MISProcess):
    """Vectorized implementation of the 2-state MIS process.

    Parameters
    ----------
    graph, coins, backend:
        See :class:`~repro.core.process.MISProcess`.
    init:
        Initial configuration: boolean array, ``"random"``,
        ``"all_black"``, ``"all_white"``, or ``None`` (random).
    eager_white_promotion:
        Ablation flag (footnote 1 of the paper): if ``True``, a white
        vertex with no black neighbour turns black with probability 1
        instead of 1/2.  Black-with-black-neighbour transitions keep the
        fair coin.  Default ``False`` (the paper's process).
    engine:
        Aggregate engine (see :mod:`repro.core.frontier`): ``"full"``
        recomputes the neighbourhood reduction every round, ``"frontier"``
        scatter-updates persistent black-neighbour counts along only
        the changed vertices' edges, and ``"auto"`` (default) switches
        between the two per round at the empirical volume crossover.
        All three produce bitwise-identical trajectories.

    Notes
    -----
    Per round, exactly one ``bits(n)`` draw is consumed from the coin
    source — the φ_t array of §2.1 — regardless of the engine.
    """

    name = "2-state"
    state_count = 2

    def __init__(
        self,
        graph: Graph,
        coins: CoinSource | int | np.random.Generator | None = None,
        init: np.ndarray | str | None = None,
        backend: str = "auto",
        eager_white_promotion: bool = False,
        engine: str = "auto",
        ops: "NeighborOps | None" = None,
    ) -> None:
        super().__init__(graph, coins, backend, ops=ops)
        self.black = resolve_two_state_init(init, self.n, self.coins)
        self.eager_white_promotion = bool(eager_white_promotion)
        self.engine = resolve_engine(engine)
        # Frontier-localized active set: sorted indices of A_t, kept
        # only while small (see _advance); None = not maintained.
        self._active_idx: np.ndarray | None = None
        self._active_token: object = None

    # ------------------------------------------------------------------
    def _state_token(self) -> object:
        return self.black

    def _state_changed(self) -> None:
        self._active_idx = None
        super()._state_changed()

    def _topology_changed(self) -> None:
        # A_t depends on the adjacency, so the maintained index set is
        # no longer trustworthy after an edge delta.
        self._active_idx = None
        super()._topology_changed()

    def _frontier_aggregates(self) -> FrontierAggregates | None:
        if self.engine == "full":
            return None
        frontier = self._frontier
        if frontier is None:
            frontier = self._frontier = FrontierAggregates(
                self.graph, self.ops, adaptive=(self.engine == "auto")
            )
        if frontier.token is not self.black:
            frontier.rebuild(self.black, token=self.black)
        return frontier

    def _has_black_neighbor(self) -> np.ndarray:
        """``exists(B_t)`` via the engine-appropriate path (no mutation)."""
        frontier = self._frontier_aggregates()
        if frontier is not None:
            return frontier.has_black
        return self._aggregate(
            "exists_black", lambda: self.ops.exists(self.black)
        )

    # ------------------------------------------------------------------
    #: |A_t| bound (as a fraction of n) below which the active set is
    #: maintained as an index array instead of recomputed as a mask —
    #: past it, per-round cost is O(|A_t| + vol(changed)) + the coin
    #: draw, with no length-n pass at all.
    _ACTIVE_IDX_FRACTION = 64

    def _advance(self) -> None:
        black = self.black
        frontier = self._frontier_aggregates()
        if (
            frontier is not None
            and not self.eager_white_promotion
            and self._active_idx is not None
            and self._active_token is black
        ):
            self._advance_on_active_idx(frontier)  # repro-lint: disable=coin-flow (fast path draws the identical full-width bits(n))
            return
        has_black_nbr = self._has_black_neighbor()
        # A_t = (black & has) | (~black & ~has), i.e. elementwise XNOR.
        active = black == has_black_nbr
        phi = self.coins.bits(self.n)
        if self.eager_white_promotion:
            # Ablation: active white vertices turn black deterministically;
            # active black vertices still flip the fair coin.
            new_black = black.copy()
            new_black[active & ~black] = True
            active_black = active & black
            new_black[active_black] = phi[active_black]
            changed_mask = new_black != black
        else:
            # Active vertices adopt phi; equivalently, flip exactly the
            # active vertices whose coin differs from their state.
            changed_mask = active & (phi ^ black)
            new_black = black ^ changed_mask
        if frontier is not None:
            changed = np.flatnonzero(changed_mask)
            up = changed[new_black[changed]]
            down = changed[~new_black[changed]]
            touched = frontier.advance(new_black, up, down, token=new_black)
            if (
                not self.eager_white_promotion
                and touched is not None
                and int(np.count_nonzero(active))
                * self._ACTIVE_IDX_FRACTION
                < self.n
            ):
                # The frontier has collapsed: start maintaining A_t as
                # a sorted index array (exact — A_t can only flip at
                # changed vertices and their neighbours).
                self._active_idx = np.flatnonzero(active & ~changed_mask)
                self._sync_active_idx(
                    new_black, frontier, np.concatenate((changed, touched))
                )
            else:
                self._active_idx = None
        self.black = new_black

    def _advance_on_active_idx(self, frontier: FrontierAggregates) -> None:
        """One round touching only A_t and the changed edges.

        Trajectory-identical to the mask path: φ_t is still a full
        ``bits(n)`` draw (§2.1's coin discipline), but it is only read
        at the active vertices, and every update is index-based.
        """
        black = self.black
        act = self._active_idx
        phi = self.coins.bits(self.n)
        flips = phi[act] ^ black[act]
        changed = act[flips]
        new_black = black.copy()
        new_black[changed] = phi[changed]
        up = changed[new_black[changed]]
        down = changed[~new_black[changed]]
        touched = frontier.advance(new_black, up, down, token=new_black)
        if touched is None:  # full-recompute round: candidates unknown
            self._active_idx = None
        else:
            # A_t flips only where blackness or has_black changed.
            self._active_idx = act[~flips]
            self._sync_active_idx(
                new_black, frontier, np.concatenate((changed, touched))
            )
        self.black = new_black

    def _sync_active_idx(
        self,
        new_black: np.ndarray,
        frontier: FrontierAggregates,
        candidates: np.ndarray,
    ) -> None:
        """Merge the candidates' new activity into the index set."""
        act_now = new_black[candidates] == frontier.has_black[candidates]
        activated = candidates[act_now]
        deactivated = candidates[~act_now]
        idx = self._active_idx
        if deactivated.size:
            idx = np.setdiff1d(idx, deactivated)
        if activated.size:
            idx = np.union1d(idx, activated)
        if idx.size * self._ACTIVE_IDX_FRACTION >= self.n:
            self._active_idx = None  # regime left; masks are cheaper
        else:
            self._active_idx = idx
            self._active_token = new_black

    # ------------------------------------------------------------------
    def black_mask(self) -> np.ndarray:
        return self.black.copy()

    def active_mask(self) -> np.ndarray:
        """``A_t``: black with a black neighbour, or white with none."""
        # (black & has) | (~black & ~has) — elementwise XNOR.
        return self.black == self._has_black_neighbor()

    def state_vector(self) -> np.ndarray:
        return self.black.copy()

    def corrupt(self, states: np.ndarray) -> None:
        self.black = validate_two_state(states, self.n)
        self._state_changed()

    def corrupt_vertices(self, vertices: Iterable[int], black: bool) -> None:
        """Set the given vertices' colors (targeted fault injection)."""
        idx = np.asarray(list(vertices), dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n):
            raise ValueError("vertex index out of range")
        self.black[idx] = black
        self._state_changed()

    # ------------------------------------------------------------------
    # Extra introspection used by the analysis experiments
    # ------------------------------------------------------------------
    def active_neighbor_counts(self) -> np.ndarray:
        """``|N(u) ∩ A_t|`` for every u (k-activity, §4.1)."""
        return self.ops.count(self.active_mask())

    def k_active_mask(self, k: int) -> np.ndarray:
        """``A^k_t``: active vertices with at most k active neighbours."""
        active = self.active_mask()
        return active & (self.ops.count(active) <= k)
