"""The 2-state MIS process (Definition 4).

Each vertex has a binary state, black or white.  In each round, every
vertex whose state is inconsistent with its neighbours' — black with a
black neighbour, or white with no black neighbour — adopts a uniformly
random state.  The set of black vertices is an MIS exactly when no vertex
is active, and the process then never changes again.

The update rule, verbatim from the paper::

    let NC_t(u) = {c_{t-1}(v) : v ∈ N(u)}
    if (c_{t-1}(u) = black and black ∈ NC_t(u))
       or (c_{t-1}(u) = white and black ∉ NC_t(u)):
        c_t(u) = uniformly random in {black, white}
    else:
        c_t(u) = c_{t-1}(u)

Coin discipline: one fair coin φ_t(u) is drawn for every vertex every
round (§2.1); active vertices set their state to the coin.
"""

from __future__ import annotations

import numpy as np

from repro.core.process import MISProcess
from repro.core.states import validate_two_state
from repro.graphs.graph import Graph
from repro.sim.rng import CoinSource


def resolve_two_state_init(
    init: np.ndarray | str | None,
    n: int,
    coins,
) -> np.ndarray:
    """Resolve an initial 2-state configuration.

    ``init`` may be a boolean array (copied), one of the strings
    ``"random"`` / ``"all_black"`` / ``"all_white"``, or ``None``
    (= ``"random"``).  Random initial states consume one ``bits(n)`` draw
    from the coin source (before any round coins).
    """
    if init is None or (isinstance(init, str) and init == "random"):
        return coins.bits(n).copy()
    if isinstance(init, str):
        if init == "all_black":
            return np.ones(n, dtype=bool)
        if init == "all_white":
            return np.zeros(n, dtype=bool)
        raise ValueError(f"unknown init spec {init!r}")
    return validate_two_state(init, n)


class TwoStateMIS(MISProcess):
    """Vectorized implementation of the 2-state MIS process.

    Parameters
    ----------
    graph, coins, backend:
        See :class:`~repro.core.process.MISProcess`.
    init:
        Initial configuration: boolean array, ``"random"``,
        ``"all_black"``, ``"all_white"``, or ``None`` (random).
    eager_white_promotion:
        Ablation flag (footnote 1 of the paper): if ``True``, a white
        vertex with no black neighbour turns black with probability 1
        instead of 1/2.  Black-with-black-neighbour transitions keep the
        fair coin.  Default ``False`` (the paper's process).

    Notes
    -----
    Per round, exactly one ``bits(n)`` draw is consumed from the coin
    source — the φ_t array of §2.1.
    """

    name = "2-state"
    state_count = 2

    def __init__(
        self,
        graph: Graph,
        coins: CoinSource | int | np.random.Generator | None = None,
        init: np.ndarray | str | None = None,
        backend: str = "auto",
        eager_white_promotion: bool = False,
    ) -> None:
        super().__init__(graph, coins, backend)
        self.black = resolve_two_state_init(init, self.n, self.coins)
        self.eager_white_promotion = bool(eager_white_promotion)

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        black = self.black
        has_black_nbr = self.ops.exists(black)
        active = np.where(black, has_black_nbr, ~has_black_nbr)
        phi = self.coins.bits(self.n)
        new_black = black.copy()
        if self.eager_white_promotion:
            # Ablation: active white vertices turn black deterministically;
            # active black vertices still flip the fair coin.
            new_black[active & ~black] = True
            active_black = active & black
            new_black[active_black] = phi[active_black]
        else:
            new_black[active] = phi[active]
        self.black = new_black

    # ------------------------------------------------------------------
    def black_mask(self) -> np.ndarray:
        return self.black.copy()

    def active_mask(self) -> np.ndarray:
        """``A_t``: black with a black neighbour, or white with none."""
        has_black_nbr = self.ops.exists(self.black)
        return np.where(self.black, has_black_nbr, ~has_black_nbr)

    def state_vector(self) -> np.ndarray:
        return self.black.copy()

    def corrupt(self, states: np.ndarray) -> None:
        self.black = validate_two_state(states, self.n)

    def corrupt_vertices(self, vertices, black: bool) -> None:
        """Set the given vertices' colors (targeted fault injection)."""
        idx = np.asarray(list(vertices), dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n):
            raise ValueError("vertex index out of range")
        self.black[idx] = black

    # ------------------------------------------------------------------
    # Extra introspection used by the analysis experiments
    # ------------------------------------------------------------------
    def active_neighbor_counts(self) -> np.ndarray:
        """``|N(u) ∩ A_t|`` for every u (k-activity, §4.1)."""
        return self.ops.count(self.active_mask())

    def k_active_mask(self, k: int) -> np.ndarray:
        """``A^k_t``: active vertices with at most k active neighbours."""
        active = self.active_mask()
        return active & (self.ops.count(active) <= k)
