"""Pure-python reference implementations of the paper's processes.

These follow the pseudocode of Definitions 4, 5, 26 and 28 as literally
as possible — per-vertex loops over neighbour state multisets — and
consume coins from the shared :class:`~repro.sim.rng.CoinSource` in
exactly the same order as the vectorized engines.  The test suite
verifies *trajectory equality* between the two under a shared seed, which
pins the vectorized engines to the paper's pseudocode.
"""

from __future__ import annotations

import numpy as np

from repro.core.states import BLACK, BLACK0, BLACK1, GRAY, WHITE
from repro.core.switch import DEFAULT_A
from repro.core.three_color import resolve_three_color_init
from repro.core.three_state import resolve_three_state_init
from repro.core.two_state import resolve_two_state_init
from repro.graphs.graph import Graph
from repro.sim.rng import CoinSource, as_coin_source


class ReferenceTwoState:
    """Literal per-vertex implementation of Definition 4."""

    def __init__(
        self,
        graph: Graph,
        coins: CoinSource | int | None = None,
        init: np.ndarray | str | None = None,
    ) -> None:
        self.graph = graph
        self.n = graph.n
        self.coins = as_coin_source(coins)
        self.black = resolve_two_state_init(init, self.n, self.coins)
        self.round = 0

    def step(self) -> None:
        """One parallel round, exactly as the Definition 4 pseudocode."""
        phi = self.coins.bits(self.n)
        old = self.black
        new = old.copy()
        for u in range(self.n):
            neighbor_colors = {old[v] for v in self.graph.neighbors(u)}
            has_black = True in neighbor_colors
            if (old[u] and has_black) or (not old[u] and not has_black):
                new[u] = phi[u]
        self.black = new
        self.round += 1

    def black_mask(self) -> np.ndarray:
        return self.black.copy()

    def active_mask(self) -> np.ndarray:
        out = np.zeros(self.n, dtype=bool)
        for u in range(self.n):
            has_black = any(self.black[v] for v in self.graph.neighbors(u))
            out[u] = (self.black[u] and has_black) or (
                not self.black[u] and not has_black
            )
        return out

    def stable_black_mask(self) -> np.ndarray:
        out = np.zeros(self.n, dtype=bool)
        for u in range(self.n):
            if self.black[u] and not any(
                self.black[v] for v in self.graph.neighbors(u)
            ):
                out[u] = True
        return out

    def is_stabilized(self) -> bool:
        stable = self.stable_black_mask()
        for u in range(self.n):
            if stable[u]:
                continue
            if not any(stable[v] for v in self.graph.neighbors(u)):
                return False
        return True


class ReferenceThreeState:
    """Literal per-vertex implementation of Definition 5."""

    def __init__(
        self,
        graph: Graph,
        coins: CoinSource | int | None = None,
        init: np.ndarray | str | None = None,
    ) -> None:
        self.graph = graph
        self.n = graph.n
        self.coins = as_coin_source(coins)
        self.states = resolve_three_state_init(init, self.n, self.coins)
        self.round = 0

    def step(self) -> None:
        phi = self.coins.bits(self.n)
        old = self.states
        new = old.copy()
        for u in range(self.n):
            nc = {int(old[v]) for v in self.graph.neighbors(u)}
            state = int(old[u])
            randomize = (
                state == BLACK1
                or (state == BLACK0 and BLACK1 not in nc)
                or (state == WHITE and nc <= {WHITE})
            )
            if randomize:
                new[u] = BLACK1 if phi[u] else BLACK0
            elif state == BLACK0:
                new[u] = WHITE
        self.states = new
        self.round += 1

    def black_mask(self) -> np.ndarray:
        return self.states != WHITE

    def stable_black_mask(self) -> np.ndarray:
        out = np.zeros(self.n, dtype=bool)
        black = self.black_mask()
        for u in range(self.n):
            if black[u] and not any(
                black[v] for v in self.graph.neighbors(u)
            ):
                out[u] = True
        return out


class ReferenceLogSwitch:
    """Literal per-vertex implementation of Definition 26."""

    def __init__(
        self,
        graph: Graph,
        coins: CoinSource | int | None = None,
        zeta: float = 4.0 / DEFAULT_A,
        init: np.ndarray | str | None = None,
    ) -> None:
        self.graph = graph
        self.n = graph.n
        self.coins = as_coin_source(coins)
        self.zeta = zeta
        # Mirror RandomizedLogSwitch's init coin consumption.
        from repro.core.switch import RandomizedLogSwitch

        helper = RandomizedLogSwitch.__new__(RandomizedLogSwitch)
        helper.n = self.n
        helper.coins = self.coins
        self.levels = helper._resolve_init(init)
        self.round = 0

    def step(self) -> None:
        b_zero = self.coins.bernoulli(self.n, self.zeta)
        old = self.levels
        new = old.copy()
        for u in range(self.n):
            level = int(old[u])
            if (level == 5 and not b_zero[u]) or level == 0:
                new[u] = 5
            else:
                closed = [int(old[v]) for v in self.graph.neighbors(u)]
                closed.append(level)
                new[u] = max(max(closed) - 1, 0)
        self.levels = new
        self.round += 1

    def sigma(self) -> np.ndarray:
        return self.levels <= 2


class ReferenceThreeColor:
    """Literal per-vertex implementation of Definition 28.

    Coin order per round matches :class:`ThreeColorMIS`: main φ_t bits
    first, then the switch's ζ-coins.
    """

    def __init__(
        self,
        graph: Graph,
        coins: CoinSource | int | None = None,
        init: np.ndarray | str | None = None,
        a: float = DEFAULT_A,
    ) -> None:
        self.graph = graph
        self.n = graph.n
        self.coins = as_coin_source(coins)
        self.colors = resolve_three_color_init(init, self.n, self.coins)
        self.switch = ReferenceLogSwitch(graph, self.coins, zeta=4.0 / a)
        self.round = 0

    def step(self) -> None:
        phi = self.coins.bits(self.n)
        old = self.colors
        sigma = self.switch.sigma()
        new = old.copy()
        for u in range(self.n):
            nc = {int(old[v]) for v in self.graph.neighbors(u)}
            color = int(old[u])
            if color == BLACK and BLACK in nc:
                new[u] = BLACK if phi[u] else GRAY
            elif color == WHITE and BLACK not in nc:
                new[u] = BLACK if phi[u] else WHITE
            elif color == GRAY and sigma[u]:
                new[u] = WHITE
        self.colors = new
        self.switch.step()
        self.round += 1

    def black_mask(self) -> np.ndarray:
        return self.colors == BLACK

    def stable_black_mask(self) -> np.ndarray:
        out = np.zeros(self.n, dtype=bool)
        black = self.black_mask()
        for u in range(self.n):
            if black[u] and not any(
                black[v] for v in self.graph.neighbors(u)
            ):
                out[u] = True
        return out
