"""Incremental frontier aggregates for the batched trial engines.

The batched engine family (:mod:`repro.core.batched`) validates the
paper's w.h.p. bounds with fleets of hundreds of replicas, and the
process's defining behaviour — geometric decay of the unstable set —
means that after the first few rounds each replica has only a handful
of vertices still moving.  The PR 2 engines nevertheless paid a full
``(R, n)`` neighbour reduction (plus a second one for the stabilization
predicate) every round, so the long tail cost as much as round 1.

This module is the batched analogue of :mod:`repro.core.frontier`: the
per-replica black-neighbour counts (plus black1 counts for the 3-state
family) live in a persistent ``(R_live, n)`` matrix, scatter-updated
from only the changed ``(replica, vertex)`` pairs.  The scatter targets
are *flattened* ``r * n + v`` COO indices:

* on the shared-graph path the changed vertices' CSR neighbour runs
  are gathered from the one shared graph
  (:func:`repro.core.neighbor_ops.gather_neighbors`) and offset by
  ``r * n`` per pair;
* on the block-diagonal path (per-trial resampled graphs) the changed
  pairs index straight into the block CSR — whose columns already *are*
  flat ``block_row * n + v`` indices — and come back mapped to live
  rows through the engine's ``pos`` permutation.

Each round every replica decides independently between the scatter
update and one full row reduction (the PR 4 crossover,
:data:`repro.core.frontier.DEFAULT_CROSSOVER`, applied to that
replica's own directed edge volume), so a replica mid-collapse
scatters while a freshly corrupted or bulky replica recomputes — and
``engine="frontier"`` forces the scatter path everywhere.

Stability bookkeeping rides the same deltas: per-replica ``I_t`` and
``N+[I_t]`` masks grow add-only (one application of the update rules
can only add to ``I_t``, from any configuration — the serial argument
in :class:`repro.core.frontier.FrontierAggregates` carries over
replica-wise), and a per-replica unstable-vertex counter makes the
retirement test an O(R_live) compare instead of a second reduction:
stabilized replicas retire without ever issuing a final full pass.

All state is aligned with the engine's *live* rows and is compacted in
lockstep with replica retirement (:meth:`BatchedFrontierAggregates.filter`),
so the count matrix, the stability masks and the flat indices shrink
alongside the block CSR.  Everything is exact integer arithmetic on the
same coin stream, so replicas stay bitwise-identical to their serial
counterparts whatever the engine — ``tests/test_batched_frontier.py``
pins this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.frontier import DEFAULT_CROSSOVER

if TYPE_CHECKING:  # import cycle: batched.py imports this module
    from repro.core.batched import _BatchedMISEngine

#: |active pairs| bound (as a fraction of R_live * n) below which the
#: 2-state engine advances on the flat active-pair set instead of the
#: (R, n) masks — the batched analogue of the serial engine's
#: ``_ACTIVE_IDX_FRACTION``, but entered much earlier: pair rounds
#: re-extract A_t from a maintained boolean matrix (one cheap scan)
#: instead of merging sorted index sets, so they stay profitable up to
#: activity fractions where the serial index set would thrash.
PAIR_ADVANCE_FRACTION = 10

#: |active pairs| bound (as a fraction of R_live * n) below which the
#: activity set is carried as a sorted flat index array instead of a
#: boolean matrix: deep-tail rounds then merge candidate sets in
#: O(|A_t| log |A_t|) instead of rescanning R_live * n booleans.
PAIR_INDEX_FRACTION = 64

#: Changed-pair bound (as a fraction of R_live * n) above which an
#: ``engine="auto"`` round runs as a *bulk* round: one full reduction
#: per indicator and no delta extraction.  Batched reductions amortize
#: far better than serial ones (one CSR × dense product serves every
#: replica), so the batched scatter pays off only at much smaller
#: changed fractions than the serial ``DEFAULT_CROSSOVER``.
BULK_ADVANCE_FRACTION = 24

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass
class RoundDelta:
    """The ``(replica, vertex)`` pairs that changed in one round.

    ``up_rows[i], up_verts[i]`` is a pair that entered the black mask
    this round (``down_*`` left it); the ``aux_*`` arrays carry the
    auxiliary indicator's deltas for engines that track one (the
    3-state family's black1 mask), with ``aux_mask`` the post-round
    auxiliary mask used on full-recompute rounds.  Rows are *live* row
    indices (positions in the engine's current ``live`` array).
    """

    up_rows: np.ndarray
    up_verts: np.ndarray
    down_rows: np.ndarray
    down_verts: np.ndarray
    aux_up_rows: np.ndarray | None = None
    aux_up_verts: np.ndarray | None = None
    aux_down_rows: np.ndarray | None = None
    aux_down_verts: np.ndarray | None = None
    aux_mask: np.ndarray | None = None


def apply_flat_delta(
    counts_flat: np.ndarray,
    up: np.ndarray | None,
    down: np.ndarray | None,
) -> None:
    """Scatter ``+1``/``-1`` at flat target indices (with multiplicity).

    The flat-index analogue of
    :meth:`repro.core.neighbor_ops.NeighborOps.apply_count_delta`, for
    callers that already hold the gathered COO targets: tiny deltas
    scatter with ``np.add.at`` (O(vol)); larger ones histogram with
    ``np.bincount`` + one vector add (O(size + vol)), with the same
    measured ``vol ≈ size/64`` break-even.
    """
    size = counts_flat.size
    up_size = 0 if up is None else up.size
    down_size = 0 if down is None else down.size
    if up_size and down_size and up_size * 64 >= size and down_size * 64 >= size:
        both = np.concatenate((up, down + np.int64(size)))
        hist = np.bincount(both, minlength=2 * size)
        np.add(counts_flat, hist[:size], out=counts_flat, casting="unsafe")
        np.subtract(
            counts_flat, hist[size:], out=counts_flat, casting="unsafe"
        )
        return
    for targets, sign in ((up, 1), (down, -1)):
        if targets is None or targets.size == 0:
            continue
        if targets.size * 64 < size:
            if sign > 0:
                np.add.at(counts_flat, targets, 1)
            else:
                np.subtract.at(counts_flat, targets, 1)
        else:
            hist = np.bincount(targets, minlength=size)
            if sign > 0:
                np.add(counts_flat, hist, out=counts_flat, casting="unsafe")
            else:
                np.subtract(
                    counts_flat, hist, out=counts_flat, casting="unsafe"
                )


class BatchedFrontierAggregates:
    """Persistent per-replica aggregates for one batched engine run.

    Owned by a :class:`repro.core.batched._BatchedMISEngine` for the
    duration of one :meth:`run`; all arrays are aligned with the
    engine's current *live* rows (row ``i`` ↔ replica ``live[i]``) and
    compacted through :meth:`filter` whenever replicas retire.

    State:

    * ``counts``     — int64 ``(L, n)``, ``counts[i, u] = |N(u) ∩ B_t|``
      in replica ``live[i]``;
    * ``aux_counts`` — optional second count matrix (3-state black1);
    * ``stable``     — ``I_t`` per replica;
    * ``covered``    — ``N+[I_t]`` per replica (add-only);
    * ``unstable``   — int64 ``(L,)``, ``|V \\ N+[I_t]|`` per replica —
      the retirement test is ``unstable == 0``, no reduction needed.

    Parameters
    ----------
    engine:
        The owning batched engine (provides the shared-graph /
        block-diagonal reductions, flat-target gathers and per-pair
        degrees).
    adaptive:
        ``True`` for ``engine="auto"`` (per-replica scatter/full
        crossover), ``False`` for ``engine="frontier"`` (always
        scatter).
    track_aux:
        Maintain the auxiliary count matrix as well.
    crossover:
        Scatter/full switch point as a fraction of each replica's
        directed edge volume (only consulted when ``adaptive``).
    """

    def __init__(
        self,
        engine: "_BatchedMISEngine",
        adaptive: bool = True,
        track_aux: bool = False,
        crossover: float = DEFAULT_CROSSOVER,
    ) -> None:
        self.engine = engine
        self.n = engine.n
        self.adaptive = bool(adaptive)
        self.track_aux = bool(track_aux)
        self.crossover = float(crossover)
        self.counts: np.ndarray | None = None
        self.has: np.ndarray | None = None
        self.aux_counts: np.ndarray | None = None
        self.aux_has: np.ndarray | None = None
        self.stable: np.ndarray | None = None
        self.covered: np.ndarray | None = None
        self.unstable: np.ndarray | None = None
        self.row_vols: np.ndarray | None = None
        self._thresholds: np.ndarray | None = None
        #: Round counters by update path (introspection / benchmarks).
        self.scatter_rounds = 0
        self.full_rounds = 0

    # ------------------------------------------------------------------
    def _counts_for(
        self, mask: np.ndarray, pos: np.ndarray | None
    ) -> np.ndarray:
        """Counts for a mask matrix, by flat scatter when it is sparse.

        The rebuild-time analogue of the per-round crossover: a sparse
        indicator (a near-stable fleet's black mask, a thin black1
        mask) is cheaper to histogram from its members' gathered edges
        than to push through a full reduction.
        """
        # Cheap density precheck first (the exact per-pair degrees are
        # only worth computing for masks that could plausibly win).
        members = int(np.count_nonzero(mask))
        if members == 0:
            return np.zeros(mask.shape, dtype=np.int64)
        if members * 8 > mask.size:
            return self.engine._count_nbrs(mask, pos)
        rows, verts = np.nonzero(mask)
        vol = int(
            self.engine._pair_degrees(
                rows.astype(np.int64), verts.astype(np.int64), pos
            ).sum()
        ) if rows.size else 0
        if rows.size and vol * 8 <= int(self.row_vols.sum()):
            counts = np.zeros(mask.size, dtype=np.int64)
            apply_flat_delta(
                counts,
                self.engine._flat_targets(
                    rows.astype(np.int64), verts.astype(np.int64), pos
                ),
                None,
            )
            return counts.reshape(mask.shape)
        return self.engine._count_nbrs(mask, pos)

    def rebuild(
        self,
        black: np.ndarray,
        pos: np.ndarray | None,
        aux_mask: np.ndarray | None = None,
    ) -> None:
        """Recompute every aggregate from scratch for the given mask(s)."""
        self.row_vols = self.engine._row_volumes(pos)
        self._thresholds = self.crossover * self.row_vols
        # The backend's native count dtype is kept (int32 for the
        # matvec backends): the scatter adds stay exact — counts never
        # leave [0, n) — and narrower rows halve mask-pass traffic.
        # ``has`` is the materialized ``counts > 0`` every consumer
        # actually reads (update rules, activity, stability).
        self.counts = self._counts_for(black, pos)
        self.has = self.counts != 0
        if self.track_aux:
            if aux_mask is None:
                raise ValueError("track_aux aggregates need an aux mask")
            self.aux_counts = self._counts_for(aux_mask, pos)
            self.aux_has = self.aux_counts != 0
        self.stable = np.ascontiguousarray(black & ~self.has)
        # N+[I_0] needs the stable-black neighbour counts.  Three ways,
        # cheapest by shape: (a) near-stable fleets (the recovery
        # workload: I_0 ≈ B_0) subtract the few unstable-black pairs'
        # edges from the black counts already in hand; (b) sparse I_0
        # gathers its members' edges; (c) everything else pays one more
        # reduction.
        stable_count = int(np.count_nonzero(self.stable))
        if stable_count * PAIR_ADVANCE_FRACTION <= self.stable.size:
            # Sparse I_0 (e.g. a fresh random configuration): gather
            # its members' edges.
            self.covered = self.stable.copy()
            self.unstable = np.zeros(black.shape[0], dtype=np.int64)
            self._recompute_covered_rows(
                np.arange(black.shape[0], dtype=np.int64), pos
            )
            return
        conflicted = black & self.has  # B_0 \ I_0
        c_rows, c_verts = np.nonzero(conflicted)
        if c_rows.size * PAIR_ADVANCE_FRACTION < black.size:
            # Near-stable fleet (the recovery workload: I_0 ≈ B_0):
            # the stable-black counts are the black counts minus the
            # few conflicted pairs' edges — no second reduction.
            stable_counts = np.ascontiguousarray(self.counts)
            if stable_counts is self.counts:
                stable_counts = stable_counts.copy()
            apply_flat_delta(
                stable_counts.reshape(-1),
                None,
                self.engine._flat_targets(
                    c_rows.astype(np.int64), c_verts.astype(np.int64), pos
                ),
            )
            self.covered = self.stable | (stable_counts > 0)
        else:
            # Bulky I_0: one reduction beats gathering its edges.
            self.covered = np.ascontiguousarray(
                self.stable | (self.engine._count_nbrs(self.stable, pos) > 0)
            )
        self.unstable = self.n - np.count_nonzero(
            self.covered, axis=1
        ).astype(np.int64)


    def full_round(
        self,
        new_black: np.ndarray,
        pos: np.ndarray | None,
        aux_mask: np.ndarray | None = None,
    ) -> None:
        """One bulk round: full count reductions, add-only stability.

        The ``engine="auto"`` shortcut for rounds where most of the
        graph is still moving: recomputing the count matrices with one
        reduction each is cheaper than extracting the changed pairs,
        and the stability bookkeeping still advances through the
        add-only mask compare (no second coverage reduction).  The raw
        reduction output is stored as-is — possibly an F-contiguous
        transpose view — and only materialized C-contiguous when a
        scatter round first needs flat-index writes into it
        (:meth:`_ensure_scatterable`).
        """
        self.counts = self.engine._count_nbrs(new_black, pos)
        self.has = self.counts != 0
        if self.track_aux:
            self.aux_counts = self.engine._count_nbrs(aux_mask, pos)
            self.aux_has = self.aux_counts != 0
        if self.engine.shared_graph:
            # Stability by one more (cheap, multi-RHS) reduction: on
            # bulk rounds the I_t delta is large, and the per-edge
            # cover gather costs more than the matvec it avoids.  On
            # the block path the matvec is the expensive side, so the
            # add-only gather update below stays the right call.
            new_stable = new_black & ~self.has
            self.stable = new_stable
            self.covered = new_stable | (
                self.engine._count_nbrs(new_stable, pos) > 0
            )
            self.unstable = self.n - np.count_nonzero(
                self.covered, axis=1
            ).astype(np.int64)
        else:
            self._update_stability_masks(new_black, pos)
        self.full_rounds += 1

    def _ensure_scatterable(self) -> None:
        """Materialize the count/has matrices C-contiguous.

        The scatter paths mutate through flat ``reshape(-1)`` *views*;
        on an F-contiguous array (the sparse ``count_batch`` hands back
        transposes, and ufuncs propagate the layout to ``has``) the
        reshape would silently copy and drop every update.
        """
        if not self.counts.flags.c_contiguous:
            self.counts = np.ascontiguousarray(self.counts)
        if not self.has.flags.c_contiguous:
            self.has = np.ascontiguousarray(self.has)
        if not self.stable.flags.c_contiguous:
            self.stable = np.ascontiguousarray(self.stable)
        if not self.covered.flags.c_contiguous:
            self.covered = np.ascontiguousarray(self.covered)
        if self.track_aux:
            if not self.aux_counts.flags.c_contiguous:
                self.aux_counts = np.ascontiguousarray(self.aux_counts)
            if not self.aux_has.flags.c_contiguous:
                self.aux_has = np.ascontiguousarray(self.aux_has)

    def _recompute_covered_rows(
        self, rows: np.ndarray, pos: np.ndarray | None
    ) -> None:
        """``N+[I_t]`` and the unstable counter, from scratch, per row."""
        n = self.n
        self.covered[rows] = self.stable[rows]
        m_rows, m_verts = np.nonzero(self.stable[rows])
        if m_rows.size:
            targets = self.engine._flat_targets(
                rows[m_rows].astype(np.int64), m_verts.astype(np.int64), pos
            )
            self.covered.reshape(-1)[targets] = True
        self.unstable[rows] = n - np.count_nonzero(self.covered[rows], axis=1)
        if n == 0:
            self.unstable[rows] = 0

    # ------------------------------------------------------------------
    def _indicator_advance(
        self,
        counts: np.ndarray,
        has: np.ndarray,
        new_mask: np.ndarray,
        up_rows: np.ndarray,
        up_verts: np.ndarray,
        down_rows: np.ndarray,
        down_verts: np.ndarray,
        pos: np.ndarray | None,
    ) -> np.ndarray | None:
        """Advance one count matrix; return touched targets or ``None``.

        Per replica, the changed pairs' edge volume is compared against
        that replica's crossover threshold: below it the replica's row
        is scatter-updated, above it the row is recomputed with one
        full reduction over the offending rows.  Returns the
        concatenated flat scatter targets when *every* replica took the
        scatter path (the candidate set for local stability and
        active-pair maintenance), else ``None``.
        """
        engine = self.engine
        L = new_mask.shape[0]
        moved = up_rows.size + down_rows.size > 0
        if not moved:
            return _EMPTY
        scatter_all = True
        full_rows = None
        if self.adaptive:
            vol = np.zeros(L, dtype=np.int64)
            if up_rows.size:
                np.add.at(
                    vol, up_rows, engine._pair_degrees(up_rows, up_verts, pos)
                )
            if down_rows.size:
                np.add.at(
                    vol,
                    down_rows,
                    engine._pair_degrees(down_rows, down_verts, pos),
                )
            heavy = vol > self._thresholds
            if heavy.any():
                scatter_all = False
                full_rows = np.flatnonzero(heavy)
        counts_flat = counts.reshape(-1)
        has_flat = has.reshape(-1)
        if scatter_all:
            up_t = engine._flat_targets(up_rows, up_verts, pos)
            down_t = engine._flat_targets(down_rows, down_verts, pos)
            apply_flat_delta(counts_flat, up_t, down_t)
            if up_t.size and down_t.size:
                touched = np.concatenate((up_t, down_t))
            else:
                touched = up_t if up_t.size else down_t
            if touched.size * 16 < has_flat.size:
                has_flat[touched] = counts_flat[touched] > 0
            else:
                np.not_equal(counts, 0, out=has)
            return touched
        # Mixed round: heavy replicas recompute their row, the rest
        # scatter.  (`heavy` rows' pairs are dropped from the scatter.)
        sub_pos = None if pos is None else pos[full_rows]
        counts[full_rows] = engine._count_nbrs(new_mask[full_rows], sub_pos)
        light_up = ~heavy[up_rows]
        light_down = ~heavy[down_rows]
        up_t = engine._flat_targets(
            up_rows[light_up], up_verts[light_up], pos
        )
        down_t = engine._flat_targets(
            down_rows[light_down], down_verts[light_down], pos
        )
        apply_flat_delta(counts_flat, up_t, down_t)
        np.not_equal(counts, 0, out=has)
        return None

    def advance(
        self,
        new_black: np.ndarray,
        delta: RoundDelta,
        pos: np.ndarray | None,
    ) -> np.ndarray | None:
        """Advance all aggregates across one synchronous round.

        ``new_black`` is the post-round black matrix of the live rows;
        ``delta`` carries the changed pairs.  Returns the black-count
        scatter targets (the candidate set — vertices whose counts may
        have changed, with multiplicity) on all-scatter rounds, or
        ``None`` when some replica fell back to a full row reduction —
        engines maintaining frontier-localized state (the 2-state
        active-pair set) key off this.
        """
        self._ensure_scatterable()
        touched = self._indicator_advance(
            self.counts,
            self.has,
            new_black,
            delta.up_rows,
            delta.up_verts,
            delta.down_rows,
            delta.down_verts,
            pos,
        )
        if self.track_aux:
            aux_touched = self._indicator_advance(
                self.aux_counts,
                self.aux_has,
                delta.aux_mask,
                delta.aux_up_rows,
                delta.aux_up_verts,
                delta.aux_down_rows,
                delta.aux_down_verts,
                pos,
            )
            if aux_touched is None:
                self.full_rounds += 1
            else:
                self.scatter_rounds += 1
        elif touched is None:
            self.full_rounds += 1
        else:
            self.scatter_rounds += 1
        # Stability: I_t = f(black, counts) changes only at moved
        # vertices and scatter targets; with candidates in hand the
        # pass is local, otherwise one (L, n) mask compare.
        black_moved = delta.up_rows.size + delta.down_rows.size > 0
        if black_moved or touched is None:
            changed = np.concatenate(
                (
                    delta.up_rows * np.int64(self.n) + delta.up_verts,
                    delta.down_rows * np.int64(self.n) + delta.down_verts,
                )
            )
            if (
                touched is not None
                and (changed.size + touched.size) * 8 < new_black.size
            ):
                self._update_stability_local(
                    new_black, np.concatenate((changed, touched)), pos
                )
            else:
                self._update_stability_masks(new_black, pos)
        return touched

    # ------------------------------------------------------------------
    def _cover_added(
        self, added: np.ndarray, pos: np.ndarray | None
    ) -> None:
        """Monotone covered update: ``N+[added]`` becomes covered.

        Writes are idempotent, so the pairs may repeat; the unstable
        counters are refreshed by re-popcounting only the *affected
        rows* (deduplicating the scatter targets to count the delta
        directly benchmarks far slower — the hash-based ``np.unique``
        dominated the whole engine on bulky rounds).
        """
        n = self.n
        rows = added // n
        verts = added - rows * n
        targets = self.engine._flat_targets(rows, verts, pos)
        covered_flat = self.covered.reshape(-1)
        if targets.size:
            all_t = np.concatenate((added, targets))
        else:
            all_t = added
        if all_t.size * 64 < covered_flat.size:
            # Small round: count the fresh coverage exactly (dedup via
            # np.unique on the small candidate set) — no length-L*n
            # pass at all.
            fresh = np.unique(all_t[~covered_flat[all_t]])
            if fresh.size == 0:
                return
            covered_flat[fresh] = True
            np.subtract.at(self.unstable, fresh // n, 1)
            return
        covered_flat[all_t] = True
        row_mask = np.zeros(self.unstable.shape[0], dtype=bool)
        row_mask[rows] = True
        if targets.size:
            row_mask[targets // n] = True
        touched_rows = np.flatnonzero(row_mask)
        self.unstable[touched_rows] = n - np.count_nonzero(
            self.covered[touched_rows], axis=1
        )

    def _update_stability_local(
        self,
        new_black: np.ndarray,
        candidates: np.ndarray,
        pos: np.ndarray | None,
    ) -> None:
        """Candidate-pair variant of :meth:`_update_stability_masks`.

        ``candidates`` must contain every flat pair whose blackness or
        black-neighbour count changed this round (multiplicity is
        harmless).
        """
        nb = new_black.reshape(-1)
        has_flat = self.has.reshape(-1)
        stable_flat = self.stable.reshape(-1)
        new_st = nb[candidates] & ~has_flat[candidates]
        diff = new_st != stable_flat[candidates]
        if not diff.any():
            return
        moved = candidates[diff]
        moved_new = new_st[diff]
        added = moved[moved_new]
        removed = moved[~moved_new]
        stable_flat[added] = True
        if removed.size:
            # Unreachable under the update rules (I_t grows monotonely,
            # replica-wise — see the serial argument) but kept exact.
            stable_flat[removed] = False
            self._recompute_covered_rows(
                np.unique(moved // self.n), pos
            )
            return
        self._cover_added(added, pos)

    def _update_stability_masks(
        self, new_black: np.ndarray, pos: np.ndarray | None
    ) -> None:
        """Update ``I_t`` / ``N+[I_t]`` / the counters from full masks."""
        new_stable = new_black & ~self.has
        delta = np.flatnonzero(
            (new_stable != self.stable).reshape(-1)
        )
        self.stable = new_stable
        if delta.size == 0:
            return
        added = delta[new_stable.reshape(-1)[delta]]
        if added.size < delta.size:  # removals present (defensive)
            self._recompute_covered_rows(np.unique(delta // self.n), pos)
            removed_rows = np.unique(delta[~new_stable.reshape(-1)[delta]] // self.n)
            clean = added[~np.isin(added // self.n, removed_rows)]
            if clean.size:
                self._cover_added(clean, pos)
            return
        self._cover_added(added, pos)

    # ------------------------------------------------------------------
    def filter(self, keep: np.ndarray) -> None:
        """Compact every aggregate to the kept live rows."""
        self.counts = self.counts[keep]
        self.has = self.has[keep]
        if self.track_aux:
            self.aux_counts = self.aux_counts[keep]
            self.aux_has = self.aux_has[keep]
        self.stable = self.stable[keep]
        self.covered = self.covered[keep]
        self.unstable = self.unstable[keep]
        self.row_vols = self.row_vols[keep]
        self._thresholds = self._thresholds[keep]

    def __repr__(self) -> str:
        live = 0 if self.unstable is None else self.unstable.shape[0]
        return (
            f"BatchedFrontierAggregates(live={live}, n={self.n}, "
            f"adaptive={self.adaptive}, aux={self.track_aux}, "
            f"scatter_rounds={self.scatter_rounds}, "
            f"full_rounds={self.full_rounds})"
        )
