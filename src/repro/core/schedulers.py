"""Partial-synchrony schedulers for the 2-state MIS process.

§1 recalls (from Shukla et al. [28] and Turau-Weyer [31]) that the
*randomized* transitions make the simple MIS rule stabilize with
probability 1 under a general adversarial scheduler — the synchronous
schedule of Definition 4 being one instance.  This module makes the
scheduler explicit: in each round an *activation set* of vertices is
selected, and only those vertices apply the update rule.

Schedulers provided:

* :class:`SynchronousScheduler` — everyone, every round (Definition 4);
* :class:`IndependentScheduler` — each vertex independently with
  probability q per round (the classic partially synchronous daemon);
* :class:`SingleVertexScheduler` — one uniformly random vertex per
  round (the randomized central daemon);
* :class:`AdversarialGreedyScheduler` — a deterministic adversary that
  activates exactly the currently *inactive-rule* vertices' complement…
  more precisely, it activates the minimal nonempty set it may legally
  pick under weak fairness: the single enabled vertex with the most
  enabled neighbours (churn-maximizing, mirroring
  :class:`repro.baselines.sequential.AdversarialDaemon`).

Fairness: a scheduler must activate every continuously-enabled vertex
eventually; all of the above satisfy this (the adversary activates an
enabled vertex every round and enabled sets shrink under it).
"""

from __future__ import annotations

import numpy as np

from repro.core.frontier import FrontierAggregates, resolve_engine
from repro.core.process import MISProcess
from repro.core.two_state import resolve_two_state_init
from repro.core.states import validate_two_state
from repro.graphs.graph import Graph
from repro.sim.rng import CoinSource


class Scheduler:
    """Selects the activation set each round."""

    def select(self, process: "ScheduledTwoStateMIS") -> np.ndarray:
        """Boolean mask of vertices allowed to update this round."""
        raise NotImplementedError


class SynchronousScheduler(Scheduler):
    """Definition 4's schedule: all vertices, every round."""

    def select(self, process: "ScheduledTwoStateMIS") -> np.ndarray:
        return np.ones(process.n, dtype=bool)


class IndependentScheduler(Scheduler):
    """Each vertex activates independently with probability ``q``."""

    def __init__(self, q: float) -> None:
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        self.q = q

    def select(self, process: "ScheduledTwoStateMIS") -> np.ndarray:
        return process.coins.bernoulli(process.n, self.q)


class SingleVertexScheduler(Scheduler):
    """One uniformly random vertex per round (randomized central daemon).

    Selection is derived from the process's coin source to keep runs
    reproducible: one ``bits(⌈log₂ n⌉)`` array per round is assembled
    into a random index (slight modulo bias is irrelevant for a
    daemon).  Earlier versions drew ⌈log₂ n⌉ separate ``bits(1)``
    arrays; with a PRNG-backed :class:`~repro.sim.rng.CoinSource` the
    single draw consumes the identical bit stream, but scripted coin
    sources now see one length-⌈log₂ n⌉ draw per round (the trajectory
    is pinned by ``tests/test_schedulers.py``).
    """

    def select(self, process: "ScheduledTwoStateMIS") -> np.ndarray:
        n = process.n
        bits_needed = max(1, int(np.ceil(np.log2(max(n, 2)))))
        draws = process.coins.bits(bits_needed)
        weights = np.left_shift(
            np.int64(1), np.arange(bits_needed, dtype=np.int64)
        )
        index = int(draws.astype(np.int64) @ weights) % n
        mask = np.zeros(n, dtype=bool)
        mask[index] = True
        return mask


class AdversarialGreedyScheduler(Scheduler):
    """Churn-maximizing single-vertex adversary (weakly fair).

    Deterministic: activates the enabled vertex with the most enabled
    neighbours (ties → largest vertex id), computed as one
    ``ops.count(enabled)`` reduction instead of a per-vertex Python
    neighbour loop — same selections, O(n²)→O(reduction) per round.
    """

    def select(self, process: "ScheduledTwoStateMIS") -> np.ndarray:
        enabled = process.active_mask()
        mask = np.zeros(process.n, dtype=bool)
        if not enabled.any():
            return mask
        scores = np.where(enabled, process.ops.count(enabled), -1)
        best_u = int(np.flatnonzero(scores == scores.max()).max())
        mask[best_u] = True
        return mask


class ScheduledTwoStateMIS(MISProcess):
    """The 2-state MIS rule under a pluggable activation scheduler.

    With :class:`SynchronousScheduler` this is exactly
    :class:`~repro.core.two_state.TwoStateMIS` (tested).  Coin order per
    round: the scheduler's draws (if any) first, then the φ_t array.

    ``engine`` selects the aggregate engine (see
    :mod:`repro.core.frontier`): under a daemon the black mask changes
    only at the activated subset of the rule-enabled vertices, so the
    frontier path's scatter updates shrink with the daemon's
    activation rate as well as with the frontier.  Trajectories are
    bitwise-identical across engines per seed.
    """

    name = "2-state (scheduled)"
    state_count = 2

    def __init__(
        self,
        graph: Graph,
        scheduler: Scheduler | None = None,
        coins: CoinSource | int | np.random.Generator | None = None,
        init: np.ndarray | str | None = None,
        backend: str = "auto",
        engine: str = "auto",
    ) -> None:
        super().__init__(graph, coins, backend)
        self.scheduler = (
            scheduler if scheduler is not None else SynchronousScheduler()
        )
        self.black = resolve_two_state_init(init, self.n, self.coins)
        self.engine = resolve_engine(engine)

    def _state_token(self) -> object:
        return self.black

    def _frontier_aggregates(self) -> FrontierAggregates | None:
        if self.engine == "full":
            return None
        frontier = self._frontier
        if frontier is None:
            frontier = self._frontier = FrontierAggregates(
                self.graph, self.ops, adaptive=(self.engine == "auto")
            )
        if frontier.token is not self.black:
            frontier.rebuild(self.black, token=self.black)
        return frontier

    def _has_black_neighbor(self) -> np.ndarray:
        """``exists(B_t)`` via the engine-appropriate path (no mutation)."""
        frontier = self._frontier_aggregates()
        if frontier is not None:
            return frontier.has_black
        return self._aggregate(
            "exists_black", lambda: self.ops.exists(self.black)
        )

    def _advance(self) -> None:
        selected = self.scheduler.select(self)
        black = self.black
        rule_enabled = black == self._has_black_neighbor()  # XNOR
        active = rule_enabled & selected
        phi = self.coins.bits(self.n)
        # Active vertices adopt phi; equivalently, flip exactly the
        # active vertices whose coin differs from their state.
        changed_mask = active & (phi ^ black)
        new_black = black ^ changed_mask
        frontier = self._frontier_aggregates()
        if frontier is not None:
            changed = np.flatnonzero(changed_mask)
            up = changed[new_black[changed]]
            down = changed[~new_black[changed]]
            frontier.advance(new_black, up, down, token=new_black)
        self.black = new_black

    def black_mask(self) -> np.ndarray:
        return self.black.copy()

    def active_mask(self) -> np.ndarray:
        """Rule-enabled vertices (scheduler-independent activity)."""
        return self.black == self._has_black_neighbor()  # XNOR

    def state_vector(self) -> np.ndarray:
        return self.black.copy()

    def corrupt(self, states: np.ndarray) -> None:
        self.black = validate_two_state(states, self.n)
        self._state_changed()
