"""Deterministic graph families used by the experiments.

These are the workloads the paper reasons about explicitly: complete graphs
(Theorem 8), trees and bounded-arboricity graphs (Theorem 11), bounded
degree graphs (Theorem 12), and the disjoint-clique union of Remark 9.  A
few extra standard families (grids, hypercubes, caterpillars, ...) are
included for the test suite and the arboricity experiments.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.graphs.graph import Graph, GraphBuilder


def empty_graph(n: int) -> Graph:
    """Graph with ``n`` vertices and no edges."""
    return Graph(n)


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n`` (Theorem 8 workload)."""
    iu, ju = np.triu_indices(n, k=1)
    return Graph.from_numpy_edges(n, iu, ju)


def path_graph(n: int) -> Graph:
    """The path ``P_n`` on ``n`` vertices (arboricity 1)."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n``; requires ``n >= 3``."""
    if n < 3:
        raise ValueError(f"cycle requires n >= 3, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph(n, edges)


def star_graph(n: int) -> Graph:
    """Star with one hub (vertex 0) and ``n - 1`` leaves."""
    if n < 1:
        raise ValueError("star requires n >= 1")
    return Graph(n, [(0, i) for i in range(1, n)])


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """``K_{a,b}`` with parts ``0..a-1`` and ``a..a+b-1``."""
    edges = [(u, a + v) for u in range(a) for v in range(b)]
    return Graph(a + b, edges)


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` grid (arboricity ≤ 2, max degree 4)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid requires rows, cols >= 1")

    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    return Graph(rows * cols, edges)


def hypercube_graph(dim: int) -> Graph:
    """The ``dim``-dimensional hypercube ``Q_dim`` (2^dim vertices)."""
    if dim < 0:
        raise ValueError("dim must be >= 0")
    n = 1 << dim
    edges = [
        (u, u ^ (1 << bit)) for u in range(n) for bit in range(dim)
        if u < (u ^ (1 << bit))
    ]
    return Graph(n, edges)


def balanced_tree(branching: int, height: int) -> Graph:
    """Complete ``branching``-ary tree of the given height.

    Height 0 is a single root.  Vertices are numbered in BFS order.
    """
    if branching < 1:
        raise ValueError("branching must be >= 1")
    if height < 0:
        raise ValueError("height must be >= 0")
    builder = GraphBuilder(1)
    frontier = [0]
    for _ in range(height):
        next_frontier = []
        for parent in frontier:
            for _ in range(branching):
                child = builder.add_vertex()
                builder.add_edge(parent, child)
                next_frontier.append(child)
        frontier = next_frontier
    return builder.build()


def caterpillar_graph(spine: int, legs_per_vertex: int) -> Graph:
    """A caterpillar: a path of ``spine`` vertices, each with pendant legs."""
    if spine < 1:
        raise ValueError("spine must be >= 1")
    if legs_per_vertex < 0:
        raise ValueError("legs_per_vertex must be >= 0")
    builder = GraphBuilder(spine)
    builder.add_path(range(spine))
    for s in range(spine):
        for _ in range(legs_per_vertex):
            leg = builder.add_vertex()
            builder.add_edge(s, leg)
    return builder.build()


def disjoint_cliques(count: int, size: int) -> Graph:
    """``count`` disjoint copies of ``K_size`` (Remark 9 workload).

    Remark 9: with ``count = size = sqrt(n)`` the 2-state process needs
    Θ(log² n) rounds w.h.p. and in expectation.
    """
    if count < 0 or size < 0:
        raise ValueError("count and size must be >= 0")
    builder = GraphBuilder(count * size)
    for c in range(count):
        builder.add_clique(range(c * size, (c + 1) * size))
    return builder.build()


def disjoint_union(graphs: Sequence[Graph]) -> Graph:
    """Disjoint union of the given graphs, relabelled consecutively."""
    builder = GraphBuilder(0)
    for g in graphs:
        offset = builder.add_vertices(g.n).start
        builder.add_edges((u + offset, v + offset) for u, v in g.edges())
    return builder.build()


def ring_of_cliques(count: int, size: int) -> Graph:
    """``count`` cliques of ``size`` vertices linked in a ring.

    Vertex 0 of clique i is joined to vertex 0 of clique (i+1) mod count.
    Requires ``count >= 3`` and ``size >= 1``.
    """
    if count < 3:
        raise ValueError("ring requires count >= 3")
    if size < 1:
        raise ValueError("size must be >= 1")
    builder = GraphBuilder(count * size)
    for c in range(count):
        builder.add_clique(range(c * size, (c + 1) * size))
    for c in range(count):
        builder.add_edge(c * size, ((c + 1) % count) * size)
    return builder.build()


def lollipop_graph(clique_size: int, path_length: int) -> Graph:
    """``K_clique_size`` with a path of ``path_length`` extra vertices."""
    if clique_size < 1:
        raise ValueError("clique_size must be >= 1")
    builder = GraphBuilder(clique_size)
    builder.add_clique(range(clique_size))
    prev = clique_size - 1
    for _ in range(path_length):
        v = builder.add_vertex()
        builder.add_edge(prev, v)
        prev = v
    return builder.build()


def barbell_graph(clique_size: int, path_length: int) -> Graph:
    """Two ``K_clique_size`` cliques joined by a path of ``path_length``."""
    if clique_size < 1:
        raise ValueError("clique_size must be >= 1")
    builder = GraphBuilder(2 * clique_size)
    builder.add_clique(range(clique_size))
    builder.add_clique(range(clique_size, 2 * clique_size))
    prev = clique_size - 1
    for _ in range(path_length):
        v = builder.add_vertex()
        builder.add_edge(prev, v)
        prev = v
    builder.add_edge(prev, clique_size)
    return builder.build()


def petersen_graph() -> Graph:
    """The Petersen graph (10 vertices, 3-regular); handy for tests."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, 5 + i) for i in range(5)]
    return Graph(10, outer + inner + spokes)
