"""Immutable graph data structure used throughout the reproduction.

The paper's processes operate on arbitrary finite simple undirected graphs
``G = (V, E)`` with ``V = {0, ..., n-1}``.  :class:`Graph` is *array
native*: the single source of truth is a CSR adjacency structure — an
``indptr`` offset array and a row-sorted ``indices`` array (int32
whenever the vertex count and directed edge count fit, so a million-edge
graph costs ~12 bytes per edge instead of the hundreds that per-vertex
Python tuples and sets used to) — and every derived representation is
computed lazily and cached:

* the Python views (:meth:`neighbors` tuples, the ``_adj_sets`` set
  list) materialize only when legacy per-vertex code asks for them;
* :meth:`adjacency_csr` wraps the native arrays into scipy without
  copying; :meth:`adjacency_dense` and :meth:`adjacency_bitset` build
  the int8 matrix and the uint64 bit-packed rows on demand;
* the hot derived-graph/property paths (:meth:`degrees`,
  :meth:`subgraph`, :meth:`complement`, :meth:`relabeled`,
  :meth:`edges_between`, :meth:`induced_edge_count`,
  :meth:`bfs_distances`) run directly on the CSR arrays.

Use :class:`GraphBuilder` (or the classmethod constructors) to construct
graphs; :class:`Graph` itself performs full validation on construction.
:meth:`Graph.from_numpy_edges` is the zero-Python-loop constructor the
large random-graph generators route through.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # scipy is a lazy import everywhere else
    from scipy.sparse import csr_matrix

#: Pickle payload: ``(n, m, indptr, indices)`` — the CSR arrays ARE the
#: graph; every lazy view is rebuilt on demand after restore.
_GraphState = tuple[int, int, np.ndarray, np.ndarray]

_INT32_MAX = np.iinfo(np.int32).max


class Graph:
    """A finite simple undirected graph on vertex set ``{0, ..., n-1}``.

    Parameters
    ----------
    n:
        Number of vertices.  Must be non-negative.
    edges:
        Iterable of ``(u, v)`` pairs with ``0 <= u, v < n`` and ``u != v``.
        Duplicate edges (in either orientation) are collapsed.

    Notes
    -----
    The instance is immutable: all mutating operations return new graphs.
    Adjacency is stored as CSR arrays (:attr:`indptr` / :attr:`indices`);
    the tuple/set views are lazy caches over them.  Sorted neighbor
    tuples are exposed via :meth:`neighbors`.
    """

    __slots__ = (
        "_n",
        "_m",
        "_indptr",
        "_indices",
        "_adj_cache",
        "_adj_sets_cache",
        "_nbr_cache",
        "_degrees",
        "_csr",
        "_csr32",
        "_dense",
        "_bits",
    )

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if n < 0:
            raise ValueError(f"number of vertices must be >= 0, got {n}")
        n = int(n)
        us: list[int] = []
        vs: list[int] = []
        for u, v in edges:
            u = int(u)
            v = int(v)
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(
                    f"edge ({u}, {v}) out of range for n={n}"
                )
            if u == v:
                raise ValueError(f"self-loop ({u}, {u}) is not allowed")
            us.append(u)
            vs.append(v)
        self._build(
            n, np.array(us, dtype=np.int64), np.array(vs, dtype=np.int64)
        )

    # ------------------------------------------------------------------
    # CSR construction core
    # ------------------------------------------------------------------
    def _build(self, n: int, us: np.ndarray, vs: np.ndarray) -> None:
        """Initialize the CSR arrays from validated endpoint arrays.

        ``us``/``vs`` are parallel int64 arrays with entries in ``[0, n)``
        and no self-loops; duplicates (in either orientation) collapse.
        One sort + keep-mask dedup over the pair keys (skipped outright
        when the keys arrive strictly increasing, as the generators
        emit them) plus one sort over the directed pairs — no
        per-vertex Python work.
        """
        self._n = n
        self._adj_cache = None
        self._adj_sets_cache = None
        self._nbr_cache = {}
        self._degrees = None
        self._csr = None
        self._csr32 = None
        self._dense = None
        self._bits = None
        if us.size == 0 or n == 0:
            self._m = 0
            dtype = np.int32 if n <= _INT32_MAX else np.int64
            self._indptr = np.zeros(n + 1, dtype=dtype)
            self._indices = np.zeros(0, dtype=dtype)
            return
        lo = np.minimum(us, vs)
        hi = np.maximum(us, vs)
        keys = lo * np.int64(n) + hi
        # Generators emit strictly increasing pair keys; checking is two
        # orders of magnitude cheaper than re-sorting a sorted array.
        if keys.size > 1 and not np.all(keys[1:] > keys[:-1]):
            keys.sort()
            keep = np.empty(keys.size, dtype=bool)
            keep[0] = True
            np.not_equal(keys[1:], keys[:-1], out=keep[1:])
            keys = keys[keep]
        self._m = int(keys.size)
        lo, hi = np.divmod(keys, np.int64(n))
        # Both directions, row-major sorted in one pass on linear keys.
        directed = np.concatenate([keys, hi * np.int64(n) + lo])
        directed.sort()
        src, dst = np.divmod(directed, np.int64(n))
        nnz = dst.size
        dtype = np.int32 if n <= _INT32_MAX and nnz <= _INT32_MAX else np.int64
        counts = np.bincount(src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self._indptr = indptr.astype(dtype, copy=False)
        self._indices = dst.astype(dtype, copy=False)

    @classmethod
    def _from_arrays(cls, n: int, us: np.ndarray, vs: np.ndarray) -> "Graph":
        """Internal fast constructor from validated endpoint arrays."""
        graph = cls.__new__(cls)
        graph._build(int(n), us, vs)
        return graph

    def _row(self, u: int) -> np.ndarray:
        """The sorted neighbor indices of ``u`` as a CSR slice (no copy)."""
        if not (0 <= u < self._n):
            raise IndexError(f"vertex {u} out of range for n={self._n}")
        return self._indices[self._indptr[u]:self._indptr[u + 1]]

    def _gather_rows(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated ``(src, dst)`` arrays of the given rows' edges.

        Vectorized multi-row CSR slice: ``src`` repeats each requested
        row by its degree, ``dst`` holds the corresponding neighbors.
        """
        rows = np.asarray(rows, dtype=np.int64)
        starts = self._indptr[rows].astype(np.int64)
        counts = (self._indptr[rows + 1] - self._indptr[rows]).astype(
            np.int64
        )
        total = int(counts.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        shifts = np.cumsum(counts, dtype=np.int64) - counts
        out_idx = np.arange(total, dtype=np.int64) + np.repeat(
            starts - shifts, counts
        )
        return (
            np.repeat(rows, counts),
            self._indices[out_idx].astype(np.int64),
        )

    # ------------------------------------------------------------------
    # Lazy Python views (legacy tuple/set access)
    # ------------------------------------------------------------------
    @property
    def _adj(self) -> tuple[tuple[int, ...], ...]:
        """Per-vertex sorted neighbor tuples, materialized on demand."""
        if self._adj_cache is None:
            flat = self._indices.tolist()
            ptr = self._indptr.tolist()
            self._adj_cache = tuple(
                tuple(flat[ptr[u]:ptr[u + 1]]) for u in range(self._n)
            )
        return self._adj_cache

    @property
    def _adj_sets(self) -> list[set[int]]:
        """Per-vertex neighbor sets, materialized on demand."""
        if self._adj_sets_cache is None:
            self._adj_sets_cache = [set(row) for row in self._adj]
        return self._adj_sets_cache

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-offset array (length ``n + 1``; do not mutate)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index array (row-sorted, length ``2m``; do not mutate)."""
        return self._indices

    def memory_nbytes(self) -> int:
        """Bytes held by the native CSR arrays (the resident footprint)."""
        return self._indptr.nbytes + self._indices.nbytes

    def vertices(self) -> range:
        """The vertex set as a :class:`range`."""
        return range(self._n)

    def neighbors(self, u: int) -> tuple[int, ...]:
        """Sorted tuple of neighbors of ``u`` (the set ``N(u)``).

        Served from a per-vertex memo over the CSR row, so one lookup on
        a million-vertex graph costs one row slice — the bulk
        tuple-of-tuples view only materializes for callers that go
        through ``_adj`` / ``_adj_sets``.
        """
        if self._adj_cache is not None:
            return self._adj_cache[u]
        n = self._n
        if not -n <= u < n:
            raise IndexError(f"vertex {u} out of range for n={n}")
        if u < 0:
            u += n
        tup = self._nbr_cache.get(u)
        if tup is None:
            tup = tuple(self._row(u).tolist())
            self._nbr_cache[u] = tup
        return tup

    def closed_neighborhood(self, u: int) -> tuple[int, ...]:
        """Sorted tuple of ``N+(u) = N(u) ∪ {u}``."""
        row = self._row(u)
        pos = int(np.searchsorted(row, u))
        return tuple(np.insert(row.astype(np.int64), pos, u).tolist())

    def degree(self, u: int) -> int:
        """Degree of vertex ``u``."""
        if not (0 <= u < self._n):
            raise IndexError(f"vertex {u} out of range for n={self._n}")
        return int(self._indptr[u + 1] - self._indptr[u])

    def degrees(self) -> np.ndarray:
        """Degree sequence as a cached ``int64`` array (do not mutate)."""
        if self._degrees is None:
            self._degrees = np.diff(self._indptr).astype(np.int64)
        return self._degrees

    def max_degree(self) -> int:
        """Maximum degree Δ (0 for the empty graph)."""
        if self._n == 0:
            return 0
        return int(self.degrees().max())

    def average_degree(self) -> float:
        """Average degree ``2m / n`` (0.0 for the empty graph)."""
        if self._n == 0:
            return 0.0
        return 2.0 * self._m / self._n

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            return False
        row = self._row(u)
        pos = int(np.searchsorted(row, v))
        return pos < row.size and int(row[pos]) == v

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """All edges as parallel int64 arrays ``(us, vs)`` with ``us < vs``.

        Lexicographically ordered; the inverse of
        :meth:`from_numpy_edges`.  This is the array-native edge view the
        vectorized derived-graph operations run on.
        """
        src = np.repeat(
            np.arange(self._n, dtype=np.int64), np.diff(self._indptr)
        )
        dst = self._indices.astype(np.int64)
        mask = src < dst
        return src[mask], dst[mask]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges as ``(u, v)`` with ``u < v``."""
        us, vs = self.edge_arrays()
        yield from zip(us.tolist(), vs.tolist())

    def edge_list(self) -> list[tuple[int, int]]:
        """All edges as a list of ``(u, v)`` pairs with ``u < v``."""
        us, vs = self.edge_arrays()
        return list(zip(us.tolist(), vs.tolist()))

    def common_neighbors(self, u: int, v: int) -> tuple[int, ...]:
        """Sorted tuple of vertices adjacent to both ``u`` and ``v``."""
        both = np.intersect1d(
            self._row(u), self._row(v), assume_unique=True
        )
        return tuple(both.astype(np.int64).tolist())

    # ------------------------------------------------------------------
    # Set-valued neighborhood helpers (paper notation, §"Notation")
    # ------------------------------------------------------------------
    def neighborhood_of_set(self, s: Iterable[int]) -> set[int]:
        """``N(S)``: vertices outside ``S`` adjacent to some vertex of ``S``."""
        s_set = {int(u) for u in s}
        if not s_set:
            return set()
        rows = np.fromiter(s_set, dtype=np.int64, count=len(s_set))
        if rows.size and (rows.min() < 0 or rows.max() >= self._n):
            raise IndexError("vertex in S out of range")
        _, dst = self._gather_rows(rows)
        return set(np.unique(dst).tolist()) - s_set

    def closed_neighborhood_of_set(self, s: Iterable[int]) -> set[int]:
        """``N+(S) = N(S) ∪ S``."""
        s_set = {int(u) for u in s}
        return self.neighborhood_of_set(s_set) | s_set

    def edges_between(self, s: Iterable[int], t: Iterable[int]) -> int:
        """``|E(S, T)|``: edges with one endpoint in ``S``, the other in ``T``.

        Edges with both endpoints in ``S ∩ T`` are counted once, matching
        the paper's set-of-edges definition ``E(S, T)``.  Cost is
        proportional to the volume of ``S``, not to ``m``.
        """
        s_set = {int(u) for u in s}
        if not s_set:
            return 0
        rows = np.fromiter(s_set, dtype=np.int64, count=len(s_set))
        if rows.min() < 0 or rows.max() >= self._n:
            raise IndexError("vertex in S out of range")
        t_ids = [int(v) for v in t if 0 <= int(v) < self._n]
        t_mask = np.zeros(self._n, dtype=bool)
        t_mask[t_ids] = True
        src, dst = self._gather_rows(rows)
        sel = t_mask[dst]
        su, sv = src[sel], dst[sel]
        keys = np.minimum(su, sv) * np.int64(self._n) + np.maximum(su, sv)
        return int(np.unique(keys).size)

    def induced_edge_count(self, s: Iterable[int]) -> int:
        """``|E(S)|``: number of edges with both endpoints in ``S``."""
        s_set = {int(u) for u in s}
        if not s_set:
            return 0
        rows = np.fromiter(s_set, dtype=np.int64, count=len(s_set))
        if rows.min() < 0 or rows.max() >= self._n:
            raise IndexError("vertex in S out of range")
        s_mask = np.zeros(self._n, dtype=bool)
        s_mask[rows] = True
        src, dst = self._gather_rows(rows)
        return int(np.count_nonzero(s_mask[dst] & (src < dst)))

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, s: Sequence[int]) -> tuple["Graph", dict[int, int]]:
        """Induced subgraph ``G[S]``.

        Returns
        -------
        (graph, mapping):
            ``graph`` is the induced subgraph with vertices relabelled to
            ``0..|S|-1`` in the order of the (deduplicated, sorted) input;
            ``mapping`` maps original labels to new labels.
        """
        s_sorted = np.unique(np.asarray(list(s), dtype=np.int64))
        if s_sorted.size and (
            s_sorted[0] < 0 or s_sorted[-1] >= self._n
        ):
            raise IndexError("vertex in S out of range")
        mapping = {int(orig): i for i, orig in enumerate(s_sorted)}
        s_mask = np.zeros(self._n, dtype=bool)
        s_mask[s_sorted] = True
        src, dst = self._gather_rows(s_sorted)
        keep = s_mask[dst] & (src < dst)
        new_us = np.searchsorted(s_sorted, src[keep])
        new_vs = np.searchsorted(s_sorted, dst[keep])
        return Graph._from_arrays(int(s_sorted.size), new_us, new_vs), mapping

    def complement(self) -> "Graph":
        """The complement graph (no self-loops), via the dense adjacency."""
        n = self._n
        if n < 2:
            return Graph(n)
        present = np.zeros((n, n), dtype=bool)
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(self._indptr))
        present[src, self._indices] = True
        us, vs = np.nonzero(np.triu(~present, k=1))
        return Graph._from_arrays(n, us.astype(np.int64), vs.astype(np.int64))

    def with_edges_added(self, new_edges: Iterable[tuple[int, int]]) -> "Graph":
        """A new graph with ``new_edges`` added."""
        add_us: list[int] = []
        add_vs: list[int] = []
        for u, v in new_edges:
            u = int(u)
            v = int(v)
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise ValueError(
                    f"edge ({u}, {v}) out of range for n={self._n}"
                )
            if u == v:
                raise ValueError(f"self-loop ({u}, {u}) is not allowed")
            add_us.append(u)
            add_vs.append(v)
        us, vs = self.edge_arrays()
        return Graph._from_arrays(
            self._n,
            np.concatenate([us, np.array(add_us, dtype=np.int64)]),
            np.concatenate([vs, np.array(add_vs, dtype=np.int64)]),
        )

    def with_edge_deltas(
        self,
        add_us: np.ndarray,
        add_vs: np.ndarray,
        rem_us: np.ndarray,
        rem_vs: np.ndarray,
    ) -> "Graph":
        """A new graph with an edge delta applied: ``(E \\ rem) ∪ add``.

        ``add_us``/``add_vs`` and ``rem_us``/``rem_vs`` are parallel
        endpoint arrays over *undirected* pairs (either orientation).
        Removals absent from the graph and additions already present
        are ignored; duplicates collapse.  This is the compaction
        primitive of the dynamic overlay
        (:mod:`repro.dynamic.overlay`), which folds an accumulated
        delta log back into a fresh CSR with a few numpy set
        operations instead of per-edge Python work.
        """
        n = self._n
        add_us = np.asarray(add_us, dtype=np.int64).ravel()
        add_vs = np.asarray(add_vs, dtype=np.int64).ravel()
        rem_us = np.asarray(rem_us, dtype=np.int64).ravel()
        rem_vs = np.asarray(rem_vs, dtype=np.int64).ravel()
        for us_, vs_ in ((add_us, add_vs), (rem_us, rem_vs)):
            if us_.shape != vs_.shape:
                raise ValueError("endpoint arrays must be equal-length")
            if us_.size:
                if (
                    int(us_.min()) < 0
                    or int(vs_.min()) < 0
                    or max(int(us_.max()), int(vs_.max())) >= n
                ):
                    raise ValueError(f"edge endpoint out of range for n={n}")
                if np.any(us_ == vs_):
                    raise ValueError("self-loops are not allowed")
        us, vs = self.edge_arrays()
        keys = us * np.int64(n) + vs  # us < vs: sorted undirected keys
        if rem_us.size:
            rem_keys = np.minimum(rem_us, rem_vs) * np.int64(n) + np.maximum(
                rem_us, rem_vs
            )
            keys = keys[~np.isin(keys, rem_keys)]
        if add_us.size:
            add_keys = np.minimum(add_us, add_vs) * np.int64(n) + np.maximum(
                add_us, add_vs
            )
            keys = np.union1d(keys, add_keys)  # sorted + deduplicated
        lo, hi = np.divmod(keys, np.int64(n))
        return Graph._from_arrays(n, lo, hi)

    def relabeled(self, perm: Sequence[int]) -> "Graph":
        """Graph with vertex ``u`` renamed to ``perm[u]``.

        ``perm`` must be a permutation of ``0..n-1``.
        """
        p = np.asarray(perm, dtype=np.int64)
        if p.shape != (self._n,) or not np.array_equal(
            np.sort(p), np.arange(self._n, dtype=np.int64)
        ):
            raise ValueError("perm must be a permutation of range(n)")
        us, vs = self.edge_arrays()
        return Graph._from_arrays(self._n, p[us], p[vs])

    # ------------------------------------------------------------------
    # Matrix / external representations
    # ------------------------------------------------------------------
    def adjacency_csr(self) -> "csr_matrix":
        """Adjacency matrix as a cached ``scipy.sparse.csr_matrix`` of int8.

        Wraps the native ``indptr`` / ``indices`` arrays without copying.
        """
        if self._csr is None:
            from scipy import sparse

            data = np.ones(self._indices.size, dtype=np.int8)
            mat = sparse.csr_matrix(
                (data, self._indices, self._indptr),
                shape=(self._n, self._n),
                copy=False,
            )
            mat.has_sorted_indices = True
            mat.has_canonical_format = True
            self._csr = mat
        return self._csr

    def adjacency_csr_int32(self) -> "csr_matrix":
        """int32-data variant of :meth:`adjacency_csr` (cached).

        The sparse matvec backends reduce in int32; handing every
        :class:`~repro.core.neighbor_ops.SparseNeighborOps` instance
        one shared, canonical-format int32 matrix avoids a per-process
        data copy and scipy's O(m) canonical-format re-check on the
        first product.
        """
        if self._csr32 is None:
            from scipy import sparse

            data = np.ones(self._indices.size, dtype=np.int32)
            mat = sparse.csr_matrix(
                (data, self._indices, self._indptr),
                shape=(self._n, self._n),
                copy=False,
            )
            mat.has_sorted_indices = True
            mat.has_canonical_format = True
            self._csr32 = mat
        return self._csr32

    def adjacency_dense(self) -> np.ndarray:
        """Adjacency matrix as a cached dense int8 numpy array."""
        if self._dense is None:
            a = np.zeros((self._n, self._n), dtype=np.int8)
            src = np.repeat(
                np.arange(self._n, dtype=np.int64), np.diff(self._indptr)
            )
            a[src, self._indices] = 1
            self._dense = a
        return self._dense

    def adjacency_bitset(self) -> np.ndarray:
        """Adjacency rows bit-packed into a cached ``(n, ⌈n/64⌉)`` uint64 array.

        Bit ``i`` of word ``w`` in row ``u`` is set iff ``{u, 64w + i}``
        is an edge — the backing store of
        :class:`repro.core.neighbor_ops.BitsetNeighborOps`.
        """
        if self._bits is None:
            n = self._n
            words = (n + 63) // 64
            bits = np.zeros((n, words), dtype=np.uint64)
            if self._indices.size:
                src = np.repeat(
                    np.arange(n, dtype=np.int64), np.diff(self._indptr)
                )
                dst = self._indices.astype(np.int64)
                np.bitwise_or.at(
                    bits,
                    (src, dst >> 6),
                    np.left_shift(
                        np.uint64(1), (dst & 63).astype(np.uint64)
                    ),
                )
            self._bits = bits
        return self._bits

    def density(self) -> float:
        """Edge density ``m / C(n, 2)`` (0.0 when n < 2)."""
        if self._n < 2:
            return 0.0
        return self._m / (self._n * (self._n - 1) / 2)

    @classmethod
    def from_edge_list(
        cls, edges: Iterable[tuple[int, int]], n: int | None = None
    ) -> "Graph":
        """Build a graph from an edge list, inferring ``n`` if omitted."""
        edge_list = [(int(u), int(v)) for u, v in edges]
        if n is None:
            n = 1 + max((max(u, v) for u, v in edge_list), default=-1)
        return cls(n, edge_list)

    @classmethod
    def from_numpy_edges(
        cls, n: int, us: np.ndarray, vs: np.ndarray
    ) -> "Graph":
        """Vectorized constructor from parallel endpoint arrays.

        Semantically identical to ``Graph(n, zip(us, vs))`` but builds
        the CSR arrays with a couple of numpy sorts — no per-edge or
        per-vertex Python work, which is what lets a million-vertex
        G(n, p) sample construct in milliseconds.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape or us.ndim != 1:
            raise ValueError("us and vs must be equal-length 1-d arrays")
        if us.size:
            if us.min() < 0 or vs.min() < 0 or max(us.max(), vs.max()) >= n:
                raise ValueError("edge endpoint out of range")
            if np.any(us == vs):
                raise ValueError("self-loops are not allowed")
        return cls._from_arrays(int(n), us, vs)

    @classmethod
    def from_csr_arrays(
        cls, n: int, m: int, indptr: np.ndarray, indices: np.ndarray
    ) -> "Graph":
        """Adopt existing CSR arrays without copying or re-validating.

        The shared-memory attach path of :mod:`repro.parallel`: workers
        rebuild published graphs directly over mapped segments, so the
        arrays may be read-only views into a buffer owned by the caller
        (who must keep that buffer alive for the graph's lifetime).
        Only shape invariants are checked — the arrays are trusted to
        be a valid row-sorted CSR adjacency as another :class:`Graph`
        produced them (``indices`` holds both directions of each edge,
        hence length ``2m``).
        """
        if n < 0 or m < 0:
            raise ValueError("n and m must be >= 0")
        if indptr.shape != (n + 1,):
            raise ValueError(
                f"indptr must have shape ({n + 1},), got {indptr.shape}"
            )
        if indices.shape != (2 * m,):
            raise ValueError(
                f"indices must have shape ({2 * m},), got {indices.shape}"
            )
        graph = cls.__new__(cls)
        graph.__setstate__((int(n), int(m), indptr, indices))
        return graph

    @classmethod
    def from_adjacency(cls, adj: Sequence[Iterable[int]]) -> "Graph":
        """Build a graph from an adjacency-list representation.

        Rows may be arbitrary iterables (including one-shot generators):
        each row is materialized exactly once before the symmetry check,
        so consuming iterators cannot silently skip the asymmetry
        validation.
        """
        rows = [tuple(int(v) for v in nbrs) for nbrs in adj]
        row_sets = [set(row) for row in rows]
        edges = []
        for u, nbrs in enumerate(rows):
            for v in nbrs:
                if u < v:
                    edges.append((u, v))
                elif v < u and u not in row_sets[v]:
                    raise ValueError(
                        f"asymmetric adjacency: {v} lists {u}? missing"
                    )
        return cls(len(rows), edges)

    def to_networkx(self) -> Any:  # networkx ships no stubs
        """Convert to a ``networkx.Graph`` (requires networkx installed)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, g: Any) -> "Graph":
        """Build from a ``networkx.Graph`` with integer-convertible labels."""
        nodes = sorted(g.nodes())
        mapping = {node: i for i, node in enumerate(nodes)}
        edges = [(mapping[u], mapping[v]) for u, v in g.edges()]
        return cls(len(nodes), edges)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int) -> np.ndarray:
        """Single-source BFS distances; unreachable vertices get -1.

        Frontier-at-a-time on the CSR arrays: each level is one
        vectorized multi-row gather instead of a per-vertex Python loop.
        """
        if not (0 <= source < self._n):
            raise ValueError(f"source {source} out of range")
        dist = np.full(self._n, -1, dtype=np.int64)
        dist[source] = 0
        frontier = np.array([source], dtype=np.int64)
        d = 0
        while frontier.size:
            d += 1
            _, nbrs = self._gather_rows(frontier)
            nbrs = nbrs[dist[nbrs] < 0]
            if nbrs.size == 0:
                break
            frontier = np.unique(nbrs)
            dist[frontier] = d
        return dist

    # ------------------------------------------------------------------
    # Pickling (drop the lazy caches; the CSR arrays are the state)
    # ------------------------------------------------------------------
    def __getstate__(self) -> _GraphState:
        return (self._n, self._m, self._indptr, self._indices)

    def __setstate__(self, state: _GraphState) -> None:
        self._n, self._m, self._indptr, self._indices = state
        self._adj_cache = None
        self._adj_sets_cache = None
        self._nbr_cache = {}
        self._degrees = None
        self._csr = None
        self._csr32 = None
        self._dense = None
        self._bits = None

    def __reduce__(self) -> tuple[Any, tuple[_GraphState]]:
        return (_rebuild_graph, (self.__getstate__(),))

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._n,
                self._m,
                self._indptr.astype(np.int64, copy=False).tobytes(),
                self._indices.astype(np.int64, copy=False).tobytes(),
            )
        )

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._m})"

    def __len__(self) -> int:
        return self._n


def _rebuild_graph(state: _GraphState) -> Graph:
    """Unpickle helper: restore a :class:`Graph` from its CSR state."""
    graph = Graph.__new__(Graph)
    graph.__setstate__(state)
    return graph


class GraphBuilder:
    """Mutable accumulator for constructing a :class:`Graph`.

    Examples
    --------
    >>> b = GraphBuilder(3)
    >>> b.add_edge(0, 1).add_edge(1, 2)  # doctest: +ELLIPSIS
    <repro.graphs.graph.GraphBuilder object at ...>
    >>> b.build().m
    2
    """

    def __init__(self, n: int = 0) -> None:
        if n < 0:
            raise ValueError("n must be >= 0")
        self._n = int(n)
        self._edges: list[tuple[int, int]] = []

    @property
    def n(self) -> int:
        """Current number of vertices."""
        return self._n

    def add_vertex(self) -> int:
        """Add one vertex; returns its index."""
        self._n += 1
        return self._n - 1

    def add_vertices(self, count: int) -> range:
        """Add ``count`` vertices; returns the range of new indices."""
        if count < 0:
            raise ValueError("count must be >= 0")
        start = self._n
        self._n += count
        return range(start, self._n)

    def add_edge(self, u: int, v: int) -> "GraphBuilder":
        """Add edge ``{u, v}``; vertices must already exist."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={self._n}")
        if u == v:
            raise ValueError("self-loops are not allowed")
        self._edges.append((u, v))
        return self

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> "GraphBuilder":
        """Add many edges."""
        for u, v in edges:
            self.add_edge(u, v)
        return self

    def add_clique(self, vertices: Sequence[int]) -> "GraphBuilder":
        """Add all edges among ``vertices``."""
        vs = list(vertices)
        for i, u in enumerate(vs):
            for v in vs[i + 1:]:
                self.add_edge(u, v)
        return self

    def add_path(self, vertices: Sequence[int]) -> "GraphBuilder":
        """Add a path through ``vertices`` in order."""
        vs = list(vertices)
        for u, v in zip(vs, vs[1:]):
            self.add_edge(u, v)
        return self

    def add_cycle(self, vertices: Sequence[int]) -> "GraphBuilder":
        """Add a cycle through ``vertices`` in order."""
        vs = list(vertices)
        if len(vs) < 3:
            raise ValueError("a cycle needs at least 3 vertices")
        self.add_path(vs)
        self.add_edge(vs[-1], vs[0])
        return self

    def build(self) -> Graph:
        """Materialize the accumulated graph."""
        return Graph(self._n, self._edges)
