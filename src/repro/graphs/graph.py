"""Immutable graph data structure used throughout the reproduction.

The paper's processes operate on arbitrary finite simple undirected graphs
``G = (V, E)`` with ``V = {0, ..., n-1}``.  :class:`Graph` stores the
adjacency structure as a tuple of sorted integer tuples, which makes
instances hashable-in-spirit (immutable), cheap to share between processes,
and convenient to convert to the numpy/scipy representations used by the
vectorized engines.

Use :class:`GraphBuilder` (or the classmethod constructors) to construct
graphs; :class:`Graph` itself performs full validation on construction.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np


class Graph:
    """A finite simple undirected graph on vertex set ``{0, ..., n-1}``.

    Parameters
    ----------
    n:
        Number of vertices.  Must be non-negative.
    edges:
        Iterable of ``(u, v)`` pairs with ``0 <= u, v < n`` and ``u != v``.
        Duplicate edges (in either orientation) are collapsed.

    Notes
    -----
    The instance is immutable: all mutating operations return new graphs.
    Adjacency lists are exposed as sorted tuples via :meth:`neighbors`.
    """

    __slots__ = ("_n", "_adj", "_m", "_adj_sets", "_csr", "_dense")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if n < 0:
            raise ValueError(f"number of vertices must be >= 0, got {n}")
        self._n = int(n)
        adj: list[set[int]] = [set() for _ in range(self._n)]
        for u, v in edges:
            u = int(u)
            v = int(v)
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise ValueError(
                    f"edge ({u}, {v}) out of range for n={self._n}"
                )
            if u == v:
                raise ValueError(f"self-loop ({u}, {u}) is not allowed")
            adj[u].add(v)
            adj[v].add(u)
        self._adj_sets = adj
        self._adj: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(s)) for s in adj
        )
        self._m = sum(len(s) for s in adj) // 2
        self._csr = None
        self._dense = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def vertices(self) -> range:
        """The vertex set as a :class:`range`."""
        return range(self._n)

    def neighbors(self, u: int) -> tuple[int, ...]:
        """Sorted tuple of neighbors of ``u`` (the set ``N(u)``)."""
        return self._adj[u]

    def closed_neighborhood(self, u: int) -> tuple[int, ...]:
        """Sorted tuple of ``N+(u) = N(u) ∪ {u}``."""
        return tuple(sorted(self._adj_sets[u] | {u}))

    def degree(self, u: int) -> int:
        """Degree of vertex ``u``."""
        return len(self._adj[u])

    def degrees(self) -> np.ndarray:
        """Degree sequence as an ``int64`` array indexed by vertex."""
        return np.array([len(a) for a in self._adj], dtype=np.int64)

    def max_degree(self) -> int:
        """Maximum degree Δ (0 for the empty graph)."""
        if self._n == 0:
            return 0
        return max(len(a) for a in self._adj)

    def average_degree(self) -> float:
        """Average degree ``2m / n`` (0.0 for the empty graph)."""
        if self._n == 0:
            return 0.0
        return 2.0 * self._m / self._n

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            return False
        return v in self._adj_sets[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges as ``(u, v)`` with ``u < v``."""
        for u in range(self._n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def edge_list(self) -> list[tuple[int, int]]:
        """All edges as a list of ``(u, v)`` pairs with ``u < v``."""
        return list(self.edges())

    def common_neighbors(self, u: int, v: int) -> tuple[int, ...]:
        """Sorted tuple of vertices adjacent to both ``u`` and ``v``."""
        return tuple(sorted(self._adj_sets[u] & self._adj_sets[v]))

    # ------------------------------------------------------------------
    # Set-valued neighborhood helpers (paper notation, §"Notation")
    # ------------------------------------------------------------------
    def neighborhood_of_set(self, s: Iterable[int]) -> set[int]:
        """``N(S)``: vertices outside ``S`` adjacent to some vertex of ``S``."""
        s_set = set(s)
        out: set[int] = set()
        for u in s_set:
            out |= self._adj_sets[u]
        return out - s_set

    def closed_neighborhood_of_set(self, s: Iterable[int]) -> set[int]:
        """``N+(S) = N(S) ∪ S``."""
        s_set = set(s)
        out = set(s_set)
        for u in s_set:
            out |= self._adj_sets[u]
        return out

    def edges_between(self, s: Iterable[int], t: Iterable[int]) -> int:
        """``|E(S, T)|``: edges with one endpoint in ``S``, the other in ``T``.

        Edges with both endpoints in ``S ∩ T`` are counted once, matching
        the paper's set-of-edges definition ``E(S, T)``.
        """
        s_set = set(s)
        t_set = set(t)
        seen: set[tuple[int, int]] = set()
        for u in s_set:
            for v in self._adj_sets[u]:
                if v in t_set:
                    seen.add((min(u, v), max(u, v)))
        return len(seen)

    def induced_edge_count(self, s: Iterable[int]) -> int:
        """``|E(S)|``: number of edges with both endpoints in ``S``."""
        s_set = set(s)
        count = 0
        for u in s_set:
            for v in self._adj_sets[u]:
                if v in s_set and u < v:
                    count += 1
        return count

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, s: Sequence[int]) -> tuple["Graph", dict[int, int]]:
        """Induced subgraph ``G[S]``.

        Returns
        -------
        (graph, mapping):
            ``graph`` is the induced subgraph with vertices relabelled to
            ``0..|S|-1`` in the order of the (deduplicated, sorted) input;
            ``mapping`` maps original labels to new labels.
        """
        s_sorted = sorted(set(s))
        mapping = {orig: i for i, orig in enumerate(s_sorted)}
        edges = []
        s_set = set(s_sorted)
        for u in s_sorted:
            for v in self._adj_sets[u]:
                if v in s_set and u < v:
                    edges.append((mapping[u], mapping[v]))
        return Graph(len(s_sorted), edges), mapping

    def complement(self) -> "Graph":
        """The complement graph (no self-loops)."""
        edges = [
            (u, v)
            for u in range(self._n)
            for v in range(u + 1, self._n)
            if v not in self._adj_sets[u]
        ]
        return Graph(self._n, edges)

    def with_edges_added(self, new_edges: Iterable[tuple[int, int]]) -> "Graph":
        """A new graph with ``new_edges`` added."""
        return Graph(self._n, list(self.edges()) + list(new_edges))

    def relabeled(self, perm: Sequence[int]) -> "Graph":
        """Graph with vertex ``u`` renamed to ``perm[u]``.

        ``perm`` must be a permutation of ``0..n-1``.
        """
        if sorted(perm) != list(range(self._n)):
            raise ValueError("perm must be a permutation of range(n)")
        return Graph(self._n, [(perm[u], perm[v]) for u, v in self.edges()])

    # ------------------------------------------------------------------
    # Matrix / external representations
    # ------------------------------------------------------------------
    def adjacency_csr(self):
        """Adjacency matrix as a cached ``scipy.sparse.csr_matrix`` of int8."""
        if self._csr is None:
            from scipy import sparse

            rows = []
            cols = []
            for u in range(self._n):
                for v in self._adj[u]:
                    rows.append(u)
                    cols.append(v)
            data = np.ones(len(rows), dtype=np.int8)
            self._csr = sparse.csr_matrix(
                (data, (rows, cols)), shape=(self._n, self._n)
            )
        return self._csr

    def adjacency_dense(self) -> np.ndarray:
        """Adjacency matrix as a cached dense int8 numpy array."""
        if self._dense is None:
            a = np.zeros((self._n, self._n), dtype=np.int8)
            for u in range(self._n):
                nbrs = self._adj[u]
                if nbrs:
                    a[u, list(nbrs)] = 1
            self._dense = a
        return self._dense

    def density(self) -> float:
        """Edge density ``m / C(n, 2)`` (0.0 when n < 2)."""
        if self._n < 2:
            return 0.0
        return self._m / (self._n * (self._n - 1) / 2)

    @classmethod
    def from_edge_list(
        cls, edges: Iterable[tuple[int, int]], n: int | None = None
    ) -> "Graph":
        """Build a graph from an edge list, inferring ``n`` if omitted."""
        edge_list = [(int(u), int(v)) for u, v in edges]
        if n is None:
            n = 1 + max((max(u, v) for u, v in edge_list), default=-1)
        return cls(n, edge_list)

    @classmethod
    def from_numpy_edges(
        cls, n: int, us: np.ndarray, vs: np.ndarray
    ) -> "Graph":
        """Vectorized constructor from parallel endpoint arrays.

        Semantically identical to ``Graph(n, zip(us, vs))`` but builds
        the adjacency structure with numpy sorting instead of per-edge
        Python work — the difference between seconds and milliseconds
        for million-edge G(n, p) samples.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape or us.ndim != 1:
            raise ValueError("us and vs must be equal-length 1-d arrays")
        if us.size:
            if us.min() < 0 or vs.min() < 0 or max(us.max(), vs.max()) >= n:
                raise ValueError("edge endpoint out of range")
            if np.any(us == vs):
                raise ValueError("self-loops are not allowed")
        graph = cls.__new__(cls)
        graph._n = int(n)
        graph._csr = None
        graph._dense = None
        lo = np.minimum(us, vs)
        hi = np.maximum(us, vs)
        keys = lo * n + hi
        unique = np.unique(keys)
        lo = (unique // n).astype(np.int64)
        hi = (unique % n).astype(np.int64)
        # Both directions, grouped by source via argsort.
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        order = np.argsort(src, kind="stable")
        src = src[order]
        dst = dst[order]
        starts = np.searchsorted(src, np.arange(n + 1))
        adj_tuples = []
        adj_sets = []
        for u in range(n):
            nbrs = np.sort(dst[starts[u]:starts[u + 1]])
            tup = tuple(int(x) for x in nbrs)
            adj_tuples.append(tup)
            adj_sets.append(set(tup))
        graph._adj = tuple(adj_tuples)
        graph._adj_sets = adj_sets
        graph._m = int(unique.size)
        return graph

    @classmethod
    def from_adjacency(cls, adj: Sequence[Iterable[int]]) -> "Graph":
        """Build a graph from an adjacency-list representation."""
        edges = []
        for u, nbrs in enumerate(adj):
            for v in nbrs:
                if u < v:
                    edges.append((u, v))
                elif v < u and u not in set(adj[v]):
                    raise ValueError(
                        f"asymmetric adjacency: {v} lists {u}? missing"
                    )
        return cls(len(adj), edges)

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` (requires networkx installed)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, g) -> "Graph":
        """Build from a ``networkx.Graph`` with integer-convertible labels."""
        nodes = sorted(g.nodes())
        mapping = {node: i for i, node in enumerate(nodes)}
        edges = [(mapping[u], mapping[v]) for u, v in g.edges()]
        return cls(len(nodes), edges)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int) -> np.ndarray:
        """Single-source BFS distances; unreachable vertices get -1."""
        if not (0 <= source < self._n):
            raise ValueError(f"source {source} out of range")
        dist = np.full(self._n, -1, dtype=np.int64)
        dist[source] = 0
        frontier = [source]
        d = 0
        while frontier:
            d += 1
            next_frontier = []
            for u in frontier:
                for v in self._adj[u]:
                    if dist[v] < 0:
                        dist[v] = d
                        next_frontier.append(v)
            frontier = next_frontier
        return dist

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._adj == other._adj

    def __hash__(self) -> int:
        return hash((self._n, self._adj))

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._m})"

    def __len__(self) -> int:
        return self._n


class GraphBuilder:
    """Mutable accumulator for constructing a :class:`Graph`.

    Examples
    --------
    >>> b = GraphBuilder(3)
    >>> b.add_edge(0, 1).add_edge(1, 2)  # doctest: +ELLIPSIS
    <repro.graphs.graph.GraphBuilder object at ...>
    >>> b.build().m
    2
    """

    def __init__(self, n: int = 0) -> None:
        if n < 0:
            raise ValueError("n must be >= 0")
        self._n = int(n)
        self._edges: list[tuple[int, int]] = []

    @property
    def n(self) -> int:
        """Current number of vertices."""
        return self._n

    def add_vertex(self) -> int:
        """Add one vertex; returns its index."""
        self._n += 1
        return self._n - 1

    def add_vertices(self, count: int) -> range:
        """Add ``count`` vertices; returns the range of new indices."""
        if count < 0:
            raise ValueError("count must be >= 0")
        start = self._n
        self._n += count
        return range(start, self._n)

    def add_edge(self, u: int, v: int) -> "GraphBuilder":
        """Add edge ``{u, v}``; vertices must already exist."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={self._n}")
        if u == v:
            raise ValueError("self-loops are not allowed")
        self._edges.append((u, v))
        return self

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> "GraphBuilder":
        """Add many edges."""
        for u, v in edges:
            self.add_edge(u, v)
        return self

    def add_clique(self, vertices: Sequence[int]) -> "GraphBuilder":
        """Add all edges among ``vertices``."""
        vs = list(vertices)
        for i, u in enumerate(vs):
            for v in vs[i + 1:]:
                self.add_edge(u, v)
        return self

    def add_path(self, vertices: Sequence[int]) -> "GraphBuilder":
        """Add a path through ``vertices`` in order."""
        vs = list(vertices)
        for u, v in zip(vs, vs[1:]):
            self.add_edge(u, v)
        return self

    def add_cycle(self, vertices: Sequence[int]) -> "GraphBuilder":
        """Add a cycle through ``vertices`` in order."""
        vs = list(vertices)
        if len(vs) < 3:
            raise ValueError("a cycle needs at least 3 vertices")
        self.add_path(vs)
        self.add_edge(vs[-1], vs[0])
        return self

    def build(self) -> Graph:
        """Materialize the accumulated graph."""
        return Graph(self._n, self._edges)
