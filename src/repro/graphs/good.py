"""Good-graph properties (Definition 17) and their checkers.

The analysis of the 2-state and 3-color MIS processes on G(n, p) goes
through a deterministic family of "(n, p)-good" graphs.  Lemma 18 shows a
G(n, p) sample is good with probability 1 - O(n^-2).  Experiment E8
empirically regenerates that claim with the checkers in this module.

Properties P1-P4 quantify over exponentially many vertex subsets; the
checkers enumerate exhaustively on tiny graphs and use calibrated random
sampling otherwise (the sampling strategy is documented per property).
P5 and P6 are checked exactly.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.properties import diameter, is_connected, max_common_neighbors


def _as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


@dataclass
class PropertyResult:
    """Outcome of checking one good-graph property.

    Attributes
    ----------
    name:
        Property identifier, e.g. ``"P1"``.
    holds:
        ``False`` only if an explicit counterexample was found.  For the
        sampled checkers, ``True`` means "no counterexample found among
        the checked certificates".
    exhaustive:
        Whether the check covered all relevant subsets.
    witness:
        A counterexample description when ``holds`` is ``False``.
    checked:
        Number of subset certificates examined.
    """

    name: str
    holds: bool
    exhaustive: bool
    witness: str | None = None
    checked: int = 0


@dataclass
class GoodGraphReport:
    """Aggregated result of checking properties P1-P6."""

    n: int
    p: float
    results: dict[str, PropertyResult] = field(default_factory=dict)

    @property
    def all_hold(self) -> bool:
        """Whether every checked property held."""
        return all(r.holds for r in self.results.values())

    def failed(self) -> list[str]:
        """Names of properties with counterexamples."""
        return [name for name, r in self.results.items() if not r.holds]

    def summary(self) -> str:
        """One line per property: name, verdict, coverage."""
        lines = []
        for name in sorted(self.results):
            r = self.results[name]
            mode = "exhaustive" if r.exhaustive else f"sampled({r.checked})"
            verdict = "OK" if r.holds else f"FAIL ({r.witness})"
            lines.append(f"{name}: {verdict} [{mode}]")
        return "\n".join(lines)


def _sample_subsets(
    n: int,
    sizes: list[int],
    samples_per_size: int,
    rng: np.random.Generator,
) -> list[list[int]]:
    """Random vertex subsets of the requested sizes (for sampled checks)."""
    subsets = []
    for size in sizes:
        size = min(size, n)
        if size <= 0:
            continue
        for _ in range(samples_per_size):
            subsets.append(
                sorted(rng.choice(n, size=size, replace=False).tolist())
            )
    return subsets


def check_p1_induced_density(
    graph: Graph,
    p: float,
    rng: np.random.Generator | int | None = None,
    samples_per_size: int = 20,
    exhaustive_limit: int = 12,
) -> PropertyResult:
    """P1: every induced subgraph G[S] has average degree
    ``<= max(8 p |S|, 4 ln n)``.

    Exhaustive over all subsets when ``n <= exhaustive_limit``; otherwise
    samples subsets at geometrically spaced sizes.  Random subsets are the
    high-entropy certificates for this property (the binomial tail bound
    in Lemma 38 is driven by the number of subsets, so any fixed sample is
    far from tight — the sampled check can only ever find gross
    violations, which is the intended use).
    """
    n = graph.n
    log_term = 4.0 * math.log(max(n, 2))

    def violates(s: list[int]) -> bool:
        if len(s) < 2:
            return False
        edges = graph.induced_edge_count(s)
        avg_deg = 2.0 * edges / len(s)
        return avg_deg > max(8.0 * p * len(s), log_term) + 1e-9

    if n <= exhaustive_limit:
        checked = 0
        for size in range(2, n + 1):
            for combo in itertools.combinations(range(n), size):
                checked += 1
                if violates(list(combo)):
                    return PropertyResult(
                        "P1", False, True, f"S={combo}", checked
                    )
        return PropertyResult("P1", True, True, None, checked)

    gen = _as_rng(rng)
    sizes = sorted(
        {max(2, n // (2 ** k)) for k in range(0, int(math.log2(n)) + 1)}
    )
    subsets = _sample_subsets(n, sizes, samples_per_size, gen)
    # Also check the full vertex set and each vertex's neighbourhood
    # (structured certificates where density concentrates).
    subsets.append(list(range(n)))
    deg = graph.degrees()
    for u in np.argsort(deg)[-10:]:
        nb = list(graph.neighbors(int(u)))
        if len(nb) >= 2:
            subsets.append(nb)
    for s in subsets:
        if violates(s):
            return PropertyResult(
                "P1", False, False, f"|S|={len(s)}", len(subsets)
            )
    return PropertyResult("P1", True, False, None, len(subsets))


def check_p2_dominating_degree(
    graph: Graph,
    p: float,
    rng: np.random.Generator | int | None = None,
    samples: int = 50,
) -> PropertyResult:
    """P2: for every S with ``|S| >= 40 ln(n)/p``, at most ``|S|/2``
    outside vertices have fewer than ``p|S|/2`` neighbours in S.

    Sampled check over random subsets at the threshold size and a few
    larger sizes (the threshold size is where the Chernoff bound of
    Lemma 39 is tightest, i.e. where violations would appear first).
    """
    n = graph.n
    if p <= 0.0:
        return PropertyResult("P2", True, True, None, 0)
    threshold = 40.0 * math.log(max(n, 2)) / p
    if threshold > n:
        # No subset is large enough; property holds vacuously.
        return PropertyResult("P2", True, True, None, 0)
    gen = _as_rng(rng)
    base = int(math.ceil(threshold))
    sizes = sorted({min(n, s) for s in (base, 2 * base, 4 * base, n)})
    checked = 0
    a = graph.adjacency_csr()
    for size in sizes:
        for _ in range(max(1, samples // len(sizes))):
            s = gen.choice(n, size=size, replace=False)
            mask = np.zeros(n, dtype=np.int8)
            mask[s] = 1
            counts = a.dot(mask)
            outside = np.ones(n, dtype=bool)
            outside[s] = False
            weak = np.count_nonzero(
                outside & (counts < p * size / 2.0)
            )
            checked += 1
            if weak > size / 2.0:
                return PropertyResult(
                    "P2", False, False,
                    f"|S|={size}, weak={weak}", checked,
                )
    return PropertyResult("P2", True, False, None, checked)


def check_p3_neighborhood_growth(
    graph: Graph,
    p: float,
    rng: np.random.Generator | int | None = None,
    samples: int = 40,
) -> PropertyResult:
    """P3: for disjoint S, T, I with ``|S| >= 2|T|`` and
    ``(S ∪ T) ∩ N(I) = ∅``:
    ``|N(T) \\ N+(S ∪ I)| <= |N(S) \\ N+(I)| + 8 ln²(n)/p``.

    Sampled check: draw random independent-ish I, then random disjoint
    S, T away from N(I) with the required size ratio.  (Lemma 41's union
    bound covers n^{O(ln n / p)} triplets, so sampling again only detects
    gross violations — the empirically interesting quantity, reported by
    experiment E8, is the margin distribution.)
    """
    n = graph.n
    if p <= 0.0:
        return PropertyResult("P3", True, True, None, 0)
    gen = _as_rng(rng)
    slack = 8.0 * math.log(max(n, 2)) ** 2 / p
    checked = 0
    for _ in range(samples):
        i_size = gen.integers(0, max(1, n // 8) + 1)
        i_set = set(
            gen.choice(n, size=int(i_size), replace=False).tolist()
        ) if i_size else set()
        blocked = graph.closed_neighborhood_of_set(i_set) if i_set else set()
        free = [v for v in range(n) if v not in blocked]
        if len(free) < 3:
            continue
        t_size = gen.integers(1, max(2, len(free) // 3))
        t_size = int(min(t_size, len(free) // 3))
        if t_size < 1:
            continue
        perm = gen.permutation(len(free))
        t_set = {free[j] for j in perm[:t_size]}
        s_set = {free[j] for j in perm[t_size:t_size + 2 * t_size]}
        if len(s_set) < 2 * len(t_set):
            continue
        checked += 1
        n_t = graph.neighborhood_of_set(t_set)
        n_s = graph.neighborhood_of_set(s_set)
        n_plus_si = graph.closed_neighborhood_of_set(s_set | i_set)
        n_plus_i = graph.closed_neighborhood_of_set(i_set) if i_set else set()
        lhs = len(n_t - n_plus_si)
        rhs = len(n_s - n_plus_i) + slack
        if lhs > rhs + 1e-9:
            return PropertyResult(
                "P3", False, False,
                f"|S|={len(s_set)},|T|={len(t_set)},|I|={len(i_set)}",
                checked,
            )
    return PropertyResult("P3", True, False, None, checked)


def check_p4_cut_edges(
    graph: Graph,
    p: float,
    rng: np.random.Generator | int | None = None,
    samples: int = 60,
) -> PropertyResult:
    """P4: for disjoint S, T with ``|S| >= |T|`` and ``|T| <= ln(n)/p``:
    ``|E(S, T)| <= 6 |S| ln n``.

    Sampled, plus the structured certificate where T is the highest-degree
    eligible vertices and S is everything else (the configuration that
    maximizes |E(S, T)| for fixed sizes in practice).
    """
    n = graph.n
    if p <= 0.0:
        return PropertyResult("P4", True, True, None, 0)
    log_n = math.log(max(n, 2))
    t_cap = max(1, int(log_n / p))
    gen = _as_rng(rng)
    checked = 0

    def violates(s_set: set[int], t_set: set[int]) -> bool:
        if not t_set or len(s_set) < len(t_set):
            return False
        return graph.edges_between(s_set, t_set) > 6.0 * len(s_set) * log_n

    # Structured certificate: top-degree T vs the rest.
    deg = graph.degrees()
    order = np.argsort(deg)[::-1]
    for t_size in {1, min(t_cap, n // 2), min(t_cap, max(1, n // 4))}:
        if t_size < 1:
            continue
        t_set = set(int(v) for v in order[:t_size])
        s_set = set(range(n)) - t_set
        checked += 1
        if violates(s_set, t_set):
            return PropertyResult(
                "P4", False, False, f"top-degree |T|={t_size}", checked
            )
    for _ in range(samples):
        t_size = int(gen.integers(1, min(t_cap, max(2, n // 2)) + 1))
        perm = gen.permutation(n)
        t_set = set(int(v) for v in perm[:t_size])
        s_size = int(gen.integers(t_size, n - t_size + 1))
        s_set = set(int(v) for v in perm[t_size:t_size + s_size])
        checked += 1
        if violates(s_set, t_set):
            return PropertyResult(
                "P4", False, False,
                f"|S|={len(s_set)},|T|={len(t_set)}", checked,
            )
    return PropertyResult("P4", True, False, None, checked)


def check_p5_common_neighbors(graph: Graph, p: float) -> PropertyResult:
    """P5 (exact): no two vertices have more than
    ``max(6 n p², 4 ln n)`` common neighbours."""
    n = graph.n
    bound = max(6.0 * n * p * p, 4.0 * math.log(max(n, 2)))
    worst = max_common_neighbors(graph)
    holds = worst <= bound + 1e-9
    witness = None if holds else f"max common nbrs {worst} > {bound:.2f}"
    return PropertyResult("P5", holds, True, witness, n * (n - 1) // 2)


def check_p6_diameter(graph: Graph, p: float) -> PropertyResult:
    """P6 (exact): if ``p >= 2 sqrt(ln n / n)`` then ``diam(G) <= 2``."""
    n = graph.n
    if n < 2:
        return PropertyResult("P6", True, True, None, 0)
    threshold = 2.0 * math.sqrt(math.log(n) / n)
    if p < threshold:
        return PropertyResult("P6", True, True, None, 0)
    if not is_connected(graph):
        return PropertyResult("P6", False, True, "disconnected", 1)
    d = diameter(graph)
    holds = d <= 2
    witness = None if holds else f"diameter {d} > 2"
    return PropertyResult("P6", holds, True, witness, 1)


def check_good_graph(
    graph: Graph,
    p: float,
    rng: np.random.Generator | int | None = None,
    samples: int = 40,
) -> GoodGraphReport:
    """Check all of P1-P6 and return a :class:`GoodGraphReport`.

    ``p`` is the G(n, p) parameter the graph is being tested against
    (Definition 17 is parameterized by both n and p).
    """
    gen = _as_rng(rng)
    report = GoodGraphReport(n=graph.n, p=p)
    report.results["P1"] = check_p1_induced_density(
        graph, p, gen, samples_per_size=max(5, samples // 8)
    )
    report.results["P2"] = check_p2_dominating_degree(graph, p, gen, samples)
    report.results["P3"] = check_p3_neighborhood_growth(graph, p, gen, samples)
    report.results["P4"] = check_p4_cut_edges(graph, p, gen, samples)
    report.results["P5"] = check_p5_common_neighbors(graph, p)
    report.results["P6"] = check_p6_diameter(graph, p)
    return report
