"""Maximum-flow (Dinic's algorithm) on small directed networks.

Used by :func:`repro.graphs.properties.max_average_degree` to compute the
maximum average degree of a graph exactly (Goldberg's densest-subgraph
reduction).  The arboricity of a graph equals, up to rounding, half its
maximum average degree (Nash-Williams 1964), which Theorem 11 relies on.

The implementation is a straightforward adjacency-list Dinic with integer
or float capacities; it is exact for the rational capacities produced by
the densest-subgraph binary search when scaled to integers.
"""

from __future__ import annotations

from collections import deque


class FlowNetwork:
    """Directed flow network with residual edges, for Dinic's algorithm."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be >= 0")
        self.num_nodes = num_nodes
        # Edge arrays: to[i], cap[i]; residual edge of i is i ^ 1.
        self._to: list[int] = []
        self._cap: list[float] = []
        self._head: list[list[int]] = [[] for _ in range(num_nodes)]

    def add_edge(self, u: int, v: int, capacity: float) -> None:
        """Add a directed edge ``u -> v`` with the given capacity."""
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise ValueError(f"edge ({u}, {v}) out of range")
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self._head[u].append(len(self._to))
        self._to.append(v)
        self._cap.append(capacity)
        self._head[v].append(len(self._to))
        self._to.append(u)
        self._cap.append(0.0)

    def _bfs_levels(self, source: int, sink: int) -> list[int] | None:
        level = [-1] * self.num_nodes
        level[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for eid in self._head[u]:
                v = self._to[eid]
                if self._cap[eid] > 1e-12 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level if level[sink] >= 0 else None

    def _dfs_augment(
        self,
        u: int,
        sink: int,
        pushed: float,
        level: list[int],
        it: list[int],
    ) -> float:
        if u == sink:
            return pushed
        while it[u] < len(self._head[u]):
            eid = self._head[u][it[u]]
            v = self._to[eid]
            if self._cap[eid] > 1e-12 and level[v] == level[u] + 1:
                flow = self._dfs_augment(
                    v, sink, min(pushed, self._cap[eid]), level, it
                )
                if flow > 1e-12:
                    self._cap[eid] -= flow
                    self._cap[eid ^ 1] += flow
                    return flow
            it[u] += 1
        return 0.0

    def max_flow(self, source: int, sink: int) -> float:
        """Compute the maximum flow from ``source`` to ``sink``."""
        if source == sink:
            raise ValueError("source and sink must differ")
        total = 0.0
        while True:
            level = self._bfs_levels(source, sink)
            if level is None:
                return total
            it = [0] * self.num_nodes
            while True:
                flow = self._dfs_augment(
                    source, sink, float("inf"), level, it
                )
                if flow <= 1e-12:
                    break
                total += flow

    def min_cut_side(self, source: int) -> set[int]:
        """After :meth:`max_flow`, the source side of a minimum cut."""
        side: set[int] = set()
        queue = deque([source])
        side.add(source)
        while queue:
            u = queue.popleft()
            for eid in self._head[u]:
                v = self._to[eid]
                if self._cap[eid] > 1e-12 and v not in side:
                    side.add(v)
                    queue.append(v)
        return side
