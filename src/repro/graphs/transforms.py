"""Graph transformations used by the MIS-based reductions.

The paper's intro places MIS at the heart of distributed symmetry
breaking [24]; the two classic reductions both go through a transformed
graph whose MIS *is* the target object:

* :func:`line_graph` — maximal matching of G = MIS of L(G);
* :func:`color_product_graph` — proper (Δ+1)-coloring of G = MIS of
  the product of G with a (Δ+1)-palette clique (Luby's reduction).

Both transforms return the derived graph together with the mapping
needed to interpret its vertices.
"""

from __future__ import annotations

from repro.graphs.graph import Graph, GraphBuilder


def line_graph(graph: Graph) -> tuple[Graph, list[tuple[int, int]]]:
    """The line graph L(G).

    Returns
    -------
    (lg, edge_of_vertex):
        ``lg`` has one vertex per edge of G; two are adjacent iff the
        edges share an endpoint.  ``edge_of_vertex[i]`` is the original
        edge of L(G)'s vertex i.

    An independent set of L(G) is a matching of G; a *maximal*
    independent set is a maximal matching.
    """
    edges = graph.edge_list()
    index_of = {e: i for i, e in enumerate(edges)}
    builder = GraphBuilder(len(edges))
    # Group edges by endpoint; connect all pairs within a group.
    incident: dict[int, list[int]] = {}
    for i, (u, v) in enumerate(edges):
        incident.setdefault(u, []).append(i)
        incident.setdefault(v, []).append(i)
    seen: set[tuple[int, int]] = set()
    for group in incident.values():
        for a_pos, i in enumerate(group):
            for j in group[a_pos + 1:]:
                key = (min(i, j), max(i, j))
                if key not in seen:
                    seen.add(key)
                    builder.add_edge(i, j)
    return builder.build(), edges


def color_product_graph(
    graph: Graph, colors: int | None = None
) -> tuple[Graph, int]:
    """Luby's coloring reduction: G × K_palette.

    Vertices are pairs ``(v, c)`` for ``c in 0..palette-1``, flattened
    as ``v * palette + c``.  Edges:

    * ``(v, c) ~ (v, c')`` for ``c != c'`` — v picks at most one color;
    * ``(v, c) ~ (u, c)`` for ``(u, v) ∈ E`` — neighbours can't share.

    With ``palette >= Δ + 1``, every MIS of the product assigns
    *exactly* one color to every vertex and that assignment is a proper
    coloring (see :func:`repro.apps.coloring.coloring_from_mis`).

    Returns
    -------
    (product, palette):
        The product graph and the palette size used (default Δ+1).
    """
    palette = colors if colors is not None else graph.max_degree() + 1
    if palette < 1:
        raise ValueError("palette must have at least one color")
    builder = GraphBuilder(graph.n * palette)

    def vid(v: int, c: int) -> int:
        return v * palette + c

    for v in graph.vertices():
        builder.add_clique([vid(v, c) for c in range(palette)])
    for u, v in graph.edges():
        for c in range(palette):
            builder.add_edge(vid(u, c), vid(v, c))
    return builder.build(), palette
