"""Graph substrate for the MIS-process reproduction.

This subpackage provides an immutable adjacency-set :class:`Graph`, a
mutable :class:`GraphBuilder`, deterministic graph families
(:mod:`repro.graphs.generators`), random graph models
(:mod:`repro.graphs.random_graphs`), structural property computations
(:mod:`repro.graphs.properties`) and the good-graph checkers of the paper's
Definition 17 (:mod:`repro.graphs.good`).

Everything is implemented from scratch on top of numpy/scipy; networkx is
only used (optionally) for conversion in :meth:`Graph.to_networkx`.
"""

from repro.graphs.graph import Graph, GraphBuilder
from repro.graphs.generators import (
    empty_graph,
    complete_graph,
    path_graph,
    cycle_graph,
    star_graph,
    complete_bipartite_graph,
    grid_graph,
    hypercube_graph,
    balanced_tree,
    caterpillar_graph,
    disjoint_cliques,
    disjoint_union,
    ring_of_cliques,
    lollipop_graph,
    barbell_graph,
    petersen_graph,
)
from repro.graphs.random_graphs import (
    gnp_random_graph,
    gnm_random_graph,
    random_tree,
    random_regular_graph,
    random_bipartite_graph,
    planted_partition_graph,
)
from repro.graphs.properties import (
    degeneracy,
    degeneracy_ordering,
    core_numbers,
    max_average_degree,
    arboricity_bounds,
    diameter,
    eccentricity,
    connected_components,
    is_connected,
    max_common_neighbors,
    triangle_count,
)
from repro.graphs.good import (
    GoodGraphReport,
    check_good_graph,
    check_p1_induced_density,
    check_p2_dominating_degree,
    check_p3_neighborhood_growth,
    check_p4_cut_edges,
    check_p5_common_neighbors,
    check_p6_diameter,
)

__all__ = [
    "Graph",
    "GraphBuilder",
    # generators
    "empty_graph",
    "complete_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_bipartite_graph",
    "grid_graph",
    "hypercube_graph",
    "balanced_tree",
    "caterpillar_graph",
    "disjoint_cliques",
    "disjoint_union",
    "ring_of_cliques",
    "lollipop_graph",
    "barbell_graph",
    "petersen_graph",
    # random graphs
    "gnp_random_graph",
    "gnm_random_graph",
    "random_tree",
    "random_regular_graph",
    "random_bipartite_graph",
    "planted_partition_graph",
    # properties
    "degeneracy",
    "degeneracy_ordering",
    "core_numbers",
    "max_average_degree",
    "arboricity_bounds",
    "diameter",
    "eccentricity",
    "connected_components",
    "is_connected",
    "max_common_neighbors",
    "triangle_count",
    # good graphs
    "GoodGraphReport",
    "check_good_graph",
    "check_p1_induced_density",
    "check_p2_dominating_degree",
    "check_p3_neighborhood_growth",
    "check_p4_cut_edges",
    "check_p5_common_neighbors",
    "check_p6_diameter",
]
