"""Exact MIS computations for small graphs.

Used by the test suite as ground truth: the processes' outputs must lie
in the set of maximal independent sets, their sizes between the
minimum-maximal (independent domination number) and maximum (independence
number α).

* :func:`enumerate_maximal_independent_sets` — Bron-Kerbosch with
  pivoting on the *complement* graph (maximal cliques of the complement
  are exactly the maximal independent sets).
* :func:`independence_number` / :func:`maximum_independent_set` —
  exact α(G) via branch and bound.
* :func:`independent_domination_number` — the size of the smallest
  maximal independent set (min over the enumeration).

All are exponential-time; callers should keep n below ~40 (enumeration)
or ~60 (branch and bound on sparse graphs).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph


def enumerate_maximal_independent_sets(graph: Graph) -> list[frozenset[int]]:
    """All maximal independent sets, via Bron-Kerbosch with pivoting.

    Runs on the complement's adjacency implicitly: "non-neighbours in
    G" play the role of neighbours in the clique enumeration.
    """
    n = graph.n
    if n == 0:
        return [frozenset()]
    # Complement adjacency as bitsets for speed.
    full = (1 << n) - 1
    comp_adj = []
    for u in range(n):
        mask = full & ~(1 << u)
        for v in graph.neighbors(u):
            mask &= ~(1 << v)
        comp_adj.append(mask)

    results: list[frozenset[int]] = []

    def bits(mask: int):
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def bron_kerbosch(r: int, p: int, x: int) -> None:
        if p == 0 and x == 0:
            results.append(
                frozenset(bits(r))
            )
            return
        # Pivot: vertex of P ∪ X maximizing |P ∩ N(pivot)|.
        pivot = -1
        best = -1
        for u in bits(p | x):
            count = bin(p & comp_adj[u]).count("1")
            if count > best:
                best = count
                pivot = u
        candidates = p & ~comp_adj[pivot]
        for v in bits(candidates):
            vbit = 1 << v
            bron_kerbosch(r | vbit, p & comp_adj[v], x & comp_adj[v])
            p &= ~vbit
            x |= vbit

    bron_kerbosch(0, full, 0)
    return results


def independence_number(graph: Graph) -> int:
    """α(G): the maximum independent-set size (branch and bound)."""
    return len(maximum_independent_set(graph))


def maximum_independent_set(graph: Graph) -> frozenset[int]:
    """A maximum independent set via branch and bound on degree order."""
    n = graph.n
    if n == 0:
        return frozenset()
    adj = [set(graph.neighbors(u)) for u in range(n)]
    best: set[int] = set()

    def expand(candidates: set[int], chosen: set[int]) -> None:
        nonlocal best
        if not candidates:
            if len(chosen) > len(best):
                best = set(chosen)
            return
        if len(chosen) + len(candidates) <= len(best):
            return  # bound
        # Branch on a maximum-degree candidate (within candidates).
        u = max(candidates, key=lambda v: len(adj[v] & candidates))
        # Case 1: exclude u — but then some neighbour must enter, else u
        # could be added; classic MIS branching keeps both cases simple:
        expand(candidates - {u}, chosen)
        # Case 2: include u.
        expand(candidates - {u} - adj[u], chosen | {u})

    expand(set(range(n)), set())
    return frozenset(best)


def independent_domination_number(graph: Graph) -> int:
    """i(G): the size of the smallest *maximal* independent set."""
    sets = enumerate_maximal_independent_sets(graph)
    return min(len(s) for s in sets)


def is_among_maximal_independent_sets(
    graph: Graph, vertices
) -> bool:
    """Whether the given set is one of the graph's maximal independent
    sets (membership in the exact enumeration)."""
    target = frozenset(int(v) for v in np.asarray(vertices).tolist())
    return target in set(enumerate_maximal_independent_sets(graph))
