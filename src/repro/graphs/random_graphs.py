"""Random graph models.

The central workload of the paper's analysis is the Erdős–Rényi model
``G(n, p)`` (Theorems 2, 3, 19, 32).  We also provide random trees (for
Theorem 11), random regular graphs (for Theorem 12's Δ-sweeps), random
bipartite graphs and a planted-partition model for additional coverage.

All generators take a ``numpy.random.Generator`` (or an integer seed) so
experiments are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph, GraphBuilder


def _as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce seeds or generators to a ``numpy.random.Generator``."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def gnp_random_graph(
    n: int, p: float, rng: np.random.Generator | int | None = None
) -> Graph:
    """Erdős–Rényi random graph ``G(n, p)``.

    Each of the ``C(n, 2)`` possible edges is present independently with
    probability ``p``.  Uses geometric skipping, so the cost is
    ``O(n + m)`` rather than ``O(n^2)`` for sparse graphs.

    Any ``0 <= p <= 1`` float is accepted, including denormals: skip
    lengths are computed in float space and compared against the number
    of remaining vertex pairs *before* integer conversion, so a tiny
    ``p`` (where ``log1p(-p)`` underflows toward ``-0.0`` and the skip
    quotient overflows to ``inf``) terminates cleanly instead of raising
    ``OverflowError``.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if n < 0:
        raise ValueError("n must be >= 0")
    gen = _as_rng(rng)
    if p == 0.0 or n < 2:
        return Graph(n)
    if p == 1.0:
        from repro.graphs.generators import complete_graph

        return complete_graph(n)

    # Dense fast path: materialize the whole upper triangle with one
    # vectorized Bernoulli draw (O(n²) memory but no Python loop) when
    # the expected edge count would make geometric skipping's per-edge
    # Python iteration the bottleneck.
    total_pairs = n * (n - 1) // 2
    expected_edges = p * total_pairs
    if expected_edges > 50_000 and n <= 6000:
        iu, ju = np.triu_indices(n, k=1)
        mask = gen.random(iu.size) < p
        return Graph.from_numpy_edges(n, iu[mask], ju[mask])

    # Geometric skipping over the linearized strict upper triangle
    # (Batagelj & Brandes 2005), assembled via the vectorized
    # constructor (Python loops over millions of edges would dominate
    # the dense experiments otherwise).
    us: list[int] = []
    vs: list[int] = []
    log_q = float(np.log1p(-p))
    v = 1
    w = -1
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        while v < n:
            r = gen.random()
            # A skip of >= total_pairs lands past the last pair whatever
            # the current position, so the sample contains no further
            # edge.  The comparison happens on the float (inf-safe): for
            # denormal p, log_q rounds to -0.0 and the quotient is +inf.
            skip = np.floor(np.log1p(-r) / log_q)
            if not skip < total_pairs:
                break
            w = w + 1 + int(skip)
            while w >= v and v < n:
                w -= v
                v += 1
            if v < n:
                us.append(w)
                vs.append(v)
    return Graph.from_numpy_edges(
        n, np.array(us, dtype=np.int64), np.array(vs, dtype=np.int64)
    )


def gnm_random_graph(
    n: int, m: int, rng: np.random.Generator | int | None = None
) -> Graph:
    """Uniform random graph with exactly ``m`` edges."""
    max_m = n * (n - 1) // 2
    if not 0 <= m <= max_m:
        raise ValueError(f"m must be in [0, {max_m}], got {m}")
    gen = _as_rng(rng)
    # Sample m distinct positions in the strict upper triangle.
    chosen = gen.choice(max_m, size=m, replace=False)
    edges = []
    for idx in chosen:
        # invert the linear index: row v, column w with w < v.
        v = int((1 + np.sqrt(1 + 8 * idx)) // 2)
        w = int(idx - v * (v - 1) // 2)
        edges.append((w, v))
    return Graph(n, edges)


def random_tree(n: int, rng: np.random.Generator | int | None = None) -> Graph:
    """Uniform random labelled tree on ``n`` vertices (Prüfer sequence).

    Trees have arboricity 1, so this is the canonical Theorem 11 workload.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if n <= 1:
        return Graph(n)
    if n == 2:
        return Graph(2, [(0, 1)])
    gen = _as_rng(rng)
    prufer = gen.integers(0, n, size=n - 2)
    degree = np.ones(n, dtype=np.int64)
    for x in prufer:
        degree[x] += 1
    edges = []
    # Min-leaf extraction via a pointer scan (classic O(n) decode).
    import heapq

    leaves = [i for i in range(n) if degree[i] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, int(x)))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, int(x))
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    return Graph(n, edges)


def random_regular_graph(
    n: int,
    d: int,
    rng: np.random.Generator | int | None = None,
    max_attempts: int = 100,
) -> Graph:
    """Random ``d``-regular graph via the configuration model.

    Pairs up ``n*d`` half-edges uniformly at random, then repairs loops
    and multi-edges by random double-edge swaps (the standard practical
    fix; the resulting distribution is not exactly uniform over simple
    d-regular graphs but is contiguous with it for ``d = O(sqrt(n))``,
    which is all the Theorem 12 experiments need).  Dense degrees
    (``2d >= n``), where swap repair converges poorly, are generated as
    the complement of a random ``(n-1-d)``-regular graph; if a repair
    still fails, the whole pairing is redrawn (up to ``max_attempts``
    restarts).

    Raises
    ------
    ValueError
        If ``n*d`` is odd or ``d >= n``.
    RuntimeError
        If every restart's repair loop fails to converge (practically
        unreachable).
    """
    if d < 0 or n < 0:
        raise ValueError("n and d must be >= 0")
    if d >= n and not (n == 0 and d == 0):
        raise ValueError(f"need d < n, got d={d}, n={n}")
    if (n * d) % 2 != 0:
        raise ValueError("n * d must be even")
    if d == 0:
        return Graph(n)
    gen = _as_rng(rng)
    if d == n - 1:
        # K_n is the unique (n-1)-regular simple graph.
        from repro.graphs.generators import complete_graph

        return complete_graph(n)
    if 2 * d >= n:
        # Complementation: G is d-regular iff its complement is
        # (n-1-d)-regular, and n(n-1-d) inherits evenness from nd.
        # The complement is taken vectorized — the result has Θ(n²)
        # edges, so per-edge Python construction would dominate.
        sparse = _random_regular_pairing(n, n - 1 - d, gen, max_attempts)
        absent = sparse.adjacency_dense() == 0
        iu, ju = np.triu_indices(n, k=1)
        mask = absent[iu, ju]
        return Graph.from_numpy_edges(n, iu[mask], ju[mask])
    return _random_regular_pairing(n, d, gen, max_attempts)


def _random_regular_pairing(
    n: int, d: int, gen: np.random.Generator, max_attempts: int
) -> Graph:
    """Configuration-model pairing with swap repair and full restarts."""
    if d == 0:
        return Graph(n)
    for _ in range(max(max_attempts, 1)):
        stubs = np.repeat(np.arange(n), d)
        gen.shuffle(stubs)
        pairs = [
            (int(stubs[2 * i]), int(stubs[2 * i + 1]))
            for i in range(len(stubs) // 2)
        ]

        def edge_key(u: int, v: int) -> tuple[int, int]:
            return (u, v) if u < v else (v, u)

        seen: dict[tuple[int, int], int] = {}
        bad: set[int] = set()
        for idx, (u, v) in enumerate(pairs):
            if u == v:
                bad.add(idx)
                continue
            key = edge_key(u, v)
            if key in seen:
                bad.add(idx)
            else:
                seen[key] = idx

        num_pairs = len(pairs)
        for _ in range(max_attempts * max(num_pairs, 1)):
            if not bad:
                break
            i = next(iter(bad))
            j = int(gen.integers(0, num_pairs))
            if i == j:
                continue
            u1, v1 = pairs[i]
            u2, v2 = pairs[j]
            # Swap the second endpoints: (u1, v2), (u2, v1).
            new_i, new_j = (u1, v2), (u2, v1)
            for idx in (i, j):
                u, v = pairs[idx]
                if u != v and seen.get(edge_key(u, v)) == idx:
                    del seen[edge_key(u, v)]
                bad.discard(idx)
            pairs[i], pairs[j] = new_i, new_j
            for idx in (i, j):
                u, v = pairs[idx]
                if u == v:
                    bad.add(idx)
                    continue
                key = edge_key(u, v)
                if key in seen and seen[key] != idx:
                    bad.add(idx)
                else:
                    seen[key] = idx
        if not bad:
            return Graph(n, pairs)
    raise RuntimeError(
        f"failed to repair a simple {d}-regular pairing on {n} vertices"
    )


def random_bipartite_graph(
    a: int, b: int, p: float, rng: np.random.Generator | int | None = None
) -> Graph:
    """Bipartite G(a, b, p): each cross edge present with probability p."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    gen = _as_rng(rng)
    mask = gen.random((a, b)) < p
    rows, cols = np.nonzero(mask)
    edges = [(int(r), a + int(c)) for r, c in zip(rows, cols)]
    return Graph(a + b, edges)


def planted_partition_graph(
    sizes: list[int],
    p_in: float,
    p_out: float,
    rng: np.random.Generator | int | None = None,
) -> Graph:
    """Planted-partition (stochastic block) model.

    Vertices are split into blocks of the given ``sizes``; two vertices in
    the same block are adjacent with probability ``p_in``, in different
    blocks with probability ``p_out``.
    """
    for prob in (p_in, p_out):
        if not 0.0 <= prob <= 1.0:
            raise ValueError("probabilities must be in [0, 1]")
    gen = _as_rng(rng)
    n = sum(sizes)
    block = np.empty(n, dtype=np.int64)
    start = 0
    for b_idx, size in enumerate(sizes):
        block[start:start + size] = b_idx
        start += size
    builder = GraphBuilder(n)
    for u in range(n):
        for v in range(u + 1, n):
            prob = p_in if block[u] == block[v] else p_out
            if prob > 0.0 and gen.random() < prob:
                builder.add_edge(u, v)
    return builder.build()
