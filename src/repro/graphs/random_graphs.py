"""Random graph models.

The central workload of the paper's analysis is the Erdős–Rényi model
``G(n, p)`` (Theorems 2, 3, 19, 32).  We also provide random trees (for
Theorem 11), random regular graphs (for Theorem 12's Δ-sweeps), random
bipartite graphs and a planted-partition model for additional coverage.

All generators take a ``numpy.random.Generator`` (or an integer seed) so
experiments are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph, GraphBuilder


def _as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce seeds or generators to a ``numpy.random.Generator``."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


#: Largest n for which the per-edge (serial) geometric-skip loop is used.
#: Small samples keep the seed-pinned draw order (one ``gen.random()``
#: per edge); above this the sampler draws skips in vectorized blocks.
_SERIAL_SKIP_MAX_N = 6000

#: Upper bound on the number of geometric skips drawn per block by the
#: vectorized sampler (bounds transient memory; tests shrink it to
#: exercise the multi-block continuation path).
_SKIP_BLOCK_CAP = 4_000_000


def _triangle_unrank(k: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Invert the strict-lower-triangle linear index ``k = v(v-1)/2 + w``.

    Returns ``(w, v)`` with ``0 <= w < v``.  The float inversion is
    followed by integer correction passes, so it is exact for every
    ``k < 2^52`` (a million-vertex graph has ~5·10¹¹ pairs).
    """
    k = np.asarray(k, dtype=np.int64)
    v = np.floor((1.0 + np.sqrt(8.0 * k + 1.0)) / 2.0).astype(np.int64)
    w = k - v * (v - 1) // 2
    while np.any(w < 0):
        v = np.where(w < 0, v - 1, v)
        w = k - v * (v - 1) // 2
    while np.any(w >= v):
        v = np.where(w >= v, v + 1, v)
        w = k - v * (v - 1) // 2
    return w, v


def _gnp_skip_vectorized(
    n: int, p: float, gen: np.random.Generator
) -> Graph:
    """Geometric skipping with block-drawn skips (large-n fast path).

    Statistically identical to the serial skip loop — the skip sequence
    is the same i.i.d. geometric stream — but the uniforms are drawn in
    vectorized blocks and the skip positions accumulated with one
    ``cumsum``, so a G(10⁶, 3/n) sample costs a handful of numpy calls
    instead of ~1.5M Python loop iterations.  (Block draws consume the
    underlying bit stream in a different order than the serial loop, so
    this path is reserved for ``n > _SERIAL_SKIP_MAX_N``, where no
    seed-pinned samples exist.)
    """
    total_pairs = n * (n - 1) // 2
    log_q = float(np.log1p(-p))
    expected = p * total_pairs
    block = int(
        min(
            _SKIP_BLOCK_CAP,
            max(1024, expected * 1.1 + 6.0 * expected**0.5 + 16),
        )
    )
    chunks: list[np.ndarray] = []
    pos = -1  # linear triangle index of the last emitted pair
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        while True:
            r = gen.random(block)
            skips = np.floor(np.log1p(-r) / log_q)
            # A single skip >= total_pairs ends the stream (inf-safe for
            # denormal p, where log_q rounds to -0.0).
            stop = np.flatnonzero(~(skips < total_pairs))
            done = stop.size > 0
            if done:
                skips = skips[: stop[0]]
            ks = pos + np.cumsum(skips.astype(np.int64) + 1)
            if ks.size:
                pos = int(ks[-1])
            in_range = ks < total_pairs
            chunks.append(ks[in_range])
            if done or not in_range.all():
                break
    if not chunks:
        return Graph(n)
    ks = np.concatenate(chunks)
    if ks.size == 0:
        return Graph(n)
    us, vs = _triangle_unrank(ks)
    return Graph.from_numpy_edges(n, us, vs)


def gnp_random_graph(
    n: int, p: float, rng: np.random.Generator | int | None = None
) -> Graph:
    """Erdős–Rényi random graph ``G(n, p)``.

    Each of the ``C(n, 2)`` possible edges is present independently with
    probability ``p``.  Uses geometric skipping, so the cost is
    ``O(n + m)`` rather than ``O(n^2)`` for sparse graphs; for
    ``n > 6000`` the skips are drawn in vectorized blocks and assembled
    straight into the CSR-native :class:`Graph`, so million-vertex
    sparse samples construct in well under a second.

    Any ``0 <= p <= 1`` float is accepted, including denormals: skip
    lengths are computed in float space and compared against the number
    of remaining vertex pairs *before* integer conversion, so a tiny
    ``p`` (where ``log1p(-p)`` underflows toward ``-0.0`` and the skip
    quotient overflows to ``inf``) terminates cleanly instead of raising
    ``OverflowError``.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if n < 0:
        raise ValueError("n must be >= 0")
    gen = _as_rng(rng)
    if p == 0.0 or n < 2:
        return Graph(n)
    if p == 1.0:
        from repro.graphs.generators import complete_graph

        return complete_graph(n)

    # Dense fast path: materialize the whole upper triangle with one
    # vectorized Bernoulli draw (O(n²) memory but no Python loop) when
    # the expected edge count would make geometric skipping's per-edge
    # Python iteration the bottleneck.
    total_pairs = n * (n - 1) // 2
    expected_edges = p * total_pairs
    if expected_edges > 50_000 and n <= 6000:
        iu, ju = np.triu_indices(n, k=1)
        mask = gen.random(iu.size) < p
        return Graph.from_numpy_edges(n, iu[mask], ju[mask])

    # Large graphs: block-vectorized geometric skipping (no pinned
    # samples exist above the serial-loop cutoff, so the different
    # uniform-consumption order is safe there).
    if n > _SERIAL_SKIP_MAX_N:
        return _gnp_skip_vectorized(n, p, gen)

    # Geometric skipping over the linearized strict upper triangle
    # (Batagelj & Brandes 2005), assembled via the vectorized
    # constructor (Python loops over millions of edges would dominate
    # the dense experiments otherwise).
    us: list[int] = []
    vs: list[int] = []
    log_q = float(np.log1p(-p))
    v = 1
    w = -1
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        while v < n:
            r = gen.random()
            # A skip of >= total_pairs lands past the last pair whatever
            # the current position, so the sample contains no further
            # edge.  The comparison happens on the float (inf-safe): for
            # denormal p, log_q rounds to -0.0 and the quotient is +inf.
            skip = np.floor(np.log1p(-r) / log_q)
            if not skip < total_pairs:
                break
            w = w + 1 + int(skip)
            while w >= v and v < n:
                w -= v
                v += 1
            if v < n:
                us.append(w)
                vs.append(v)
    return Graph.from_numpy_edges(
        n, np.array(us, dtype=np.int64), np.array(vs, dtype=np.int64)
    )


def gnm_random_graph(
    n: int, m: int, rng: np.random.Generator | int | None = None
) -> Graph:
    """Uniform random graph with exactly ``m`` edges."""
    max_m = n * (n - 1) // 2
    if not 0 <= m <= max_m:
        raise ValueError(f"m must be in [0, {max_m}], got {m}")
    gen = _as_rng(rng)
    # Sample m distinct positions in the strict upper triangle and
    # invert the linear indices (row v, column w with w < v) vectorized.
    chosen = gen.choice(max_m, size=m, replace=False)
    if m == 0:
        return Graph(n)
    us, vs = _triangle_unrank(chosen)
    return Graph.from_numpy_edges(n, us, vs)


def random_tree(n: int, rng: np.random.Generator | int | None = None) -> Graph:
    """Uniform random labelled tree on ``n`` vertices (Prüfer sequence).

    Trees have arboricity 1, so this is the canonical Theorem 11 workload.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if n <= 1:
        return Graph(n)
    if n == 2:
        return Graph(2, [(0, 1)])
    gen = _as_rng(rng)
    prufer = gen.integers(0, n, size=n - 2)
    degree = np.ones(n, dtype=np.int64)
    for x in prufer:
        degree[x] += 1
    edges = []
    # Min-leaf extraction via a pointer scan (classic O(n) decode).
    import heapq

    leaves = [i for i in range(n) if degree[i] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, int(x)))
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, int(x))
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    edges.append((u, v))
    arr = np.array(edges, dtype=np.int64)
    return Graph.from_numpy_edges(n, arr[:, 0], arr[:, 1])


def random_regular_graph(
    n: int,
    d: int,
    rng: np.random.Generator | int | None = None,
    max_attempts: int = 100,
) -> Graph:
    """Random ``d``-regular graph via the configuration model.

    Pairs up ``n*d`` half-edges uniformly at random, then repairs loops
    and multi-edges by random double-edge swaps (the standard practical
    fix; the resulting distribution is not exactly uniform over simple
    d-regular graphs but is contiguous with it for ``d = O(sqrt(n))``,
    which is all the Theorem 12 experiments need).  Dense degrees
    (``2d >= n``), where swap repair converges poorly, are generated as
    the complement of a random ``(n-1-d)``-regular graph; if a repair
    still fails, the whole pairing is redrawn (up to ``max_attempts``
    restarts).

    Raises
    ------
    ValueError
        If ``n*d`` is odd or ``d >= n``.
    RuntimeError
        If every restart's repair loop fails to converge (practically
        unreachable).
    """
    if d < 0 or n < 0:
        raise ValueError("n and d must be >= 0")
    if d >= n and not (n == 0 and d == 0):
        raise ValueError(f"need d < n, got d={d}, n={n}")
    if (n * d) % 2 != 0:
        raise ValueError("n * d must be even")
    if d == 0:
        return Graph(n)
    gen = _as_rng(rng)
    if d == n - 1:
        # K_n is the unique (n-1)-regular simple graph.
        from repro.graphs.generators import complete_graph

        return complete_graph(n)
    if 2 * d >= n:
        # Complementation: G is d-regular iff its complement is
        # (n-1-d)-regular, and n(n-1-d) inherits evenness from nd.
        # The complement is taken vectorized — the result has Θ(n²)
        # edges, so per-edge Python construction would dominate.
        sparse = _random_regular_pairing(n, n - 1 - d, gen, max_attempts)
        absent = sparse.adjacency_dense() == 0
        iu, ju = np.triu_indices(n, k=1)
        mask = absent[iu, ju]
        return Graph.from_numpy_edges(n, iu[mask], ju[mask])
    return _random_regular_pairing(n, d, gen, max_attempts)


def _random_regular_pairing(
    n: int, d: int, gen: np.random.Generator, max_attempts: int
) -> Graph:
    """Configuration-model pairing with swap repair and full restarts."""
    if d == 0:
        return Graph(n)
    for _ in range(max(max_attempts, 1)):
        stubs = np.repeat(np.arange(n), d)
        gen.shuffle(stubs)
        pairs = [
            (int(stubs[2 * i]), int(stubs[2 * i + 1]))
            for i in range(len(stubs) // 2)
        ]

        def edge_key(u: int, v: int) -> tuple[int, int]:
            return (u, v) if u < v else (v, u)

        seen: dict[tuple[int, int], int] = {}
        bad: set[int] = set()
        for idx, (u, v) in enumerate(pairs):
            if u == v:
                bad.add(idx)
                continue
            key = edge_key(u, v)
            if key in seen:
                bad.add(idx)
            else:
                seen[key] = idx

        num_pairs = len(pairs)
        for _ in range(max_attempts * max(num_pairs, 1)):
            if not bad:
                break
            i = next(iter(bad))
            j = int(gen.integers(0, num_pairs))
            if i == j:
                continue
            u1, v1 = pairs[i]
            u2, v2 = pairs[j]
            # Swap the second endpoints: (u1, v2), (u2, v1).
            new_i, new_j = (u1, v2), (u2, v1)
            for idx in (i, j):
                u, v = pairs[idx]
                if u != v and seen.get(edge_key(u, v)) == idx:
                    del seen[edge_key(u, v)]
                bad.discard(idx)
            pairs[i], pairs[j] = new_i, new_j
            for idx in (i, j):
                u, v = pairs[idx]
                if u == v:
                    bad.add(idx)
                    continue
                key = edge_key(u, v)
                if key in seen and seen[key] != idx:
                    bad.add(idx)
                else:
                    seen[key] = idx
        if not bad:
            arr = np.array(pairs, dtype=np.int64)
            return Graph.from_numpy_edges(n, arr[:, 0], arr[:, 1])
    raise RuntimeError(
        f"failed to repair a simple {d}-regular pairing on {n} vertices"
    )


def random_bipartite_graph(
    a: int, b: int, p: float, rng: np.random.Generator | int | None = None
) -> Graph:
    """Bipartite G(a, b, p): each cross edge present with probability p."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    gen = _as_rng(rng)
    mask = gen.random((a, b)) < p
    rows, cols = np.nonzero(mask)
    return Graph.from_numpy_edges(
        a + b, rows.astype(np.int64), a + cols.astype(np.int64)
    )


def planted_partition_graph(
    sizes: list[int],
    p_in: float,
    p_out: float,
    rng: np.random.Generator | int | None = None,
) -> Graph:
    """Planted-partition (stochastic block) model.

    Vertices are split into blocks of the given ``sizes``; two vertices in
    the same block are adjacent with probability ``p_in``, in different
    blocks with probability ``p_out``.
    """
    for prob in (p_in, p_out):
        if not 0.0 <= prob <= 1.0:
            raise ValueError("probabilities must be in [0, 1]")
    gen = _as_rng(rng)
    n = sum(sizes)
    block = np.empty(n, dtype=np.int64)
    start = 0
    for b_idx, size in enumerate(sizes):
        block[start:start + size] = b_idx
        start += size
    builder = GraphBuilder(n)
    for u in range(n):
        for v in range(u + 1, n):
            prob = p_in if block[u] == block[v] else p_out
            if prob > 0.0 and gen.random() < prob:
                builder.add_edge(u, v)
    return builder.build()
