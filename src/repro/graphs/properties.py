"""Structural graph properties used by the paper's theorems.

* Theorem 11 is parameterized by *arboricity* (Nash-Williams):
  :func:`arboricity_bounds` brackets it via the exact maximum average
  degree (densest-subgraph max-flow reduction) and the degeneracy.
* Theorem 12 is parameterized by the maximum degree (on :class:`Graph`).
* Definition 17 (P5, P6) needs common-neighbour counts and the diameter.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graphs.flow import FlowNetwork
from repro.graphs.graph import Graph


def connected_components(graph: Graph) -> list[list[int]]:
    """Connected components, each as a sorted vertex list."""
    seen = [False] * graph.n
    components: list[list[int]] = []
    for root in graph.vertices():
        if seen[root]:
            continue
        comp = [root]
        seen[root] = True
        stack = [root]
        while stack:
            u = stack.pop()
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    comp.append(v)
                    stack.append(v)
        components.append(sorted(comp))
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if graph.n <= 1:
        return True
    return len(connected_components(graph)) == 1


def eccentricity(graph: Graph, u: int) -> int:
    """Eccentricity of ``u``; raises if the graph is disconnected."""
    dist = graph.bfs_distances(u)
    if np.any(dist < 0):
        raise ValueError("eccentricity undefined on disconnected graphs")
    return int(dist.max())


def diameter(graph: Graph) -> int:
    """Exact diameter via all-sources BFS; inf-like error if disconnected.

    Used by good-graph property P6 (``diam(G) <= 2`` when
    ``p >= 2 sqrt(ln n / n)``).
    """
    if graph.n == 0:
        return 0
    best = 0
    for u in graph.vertices():
        best = max(best, eccentricity(graph, u))
    return best


def core_numbers(graph: Graph) -> np.ndarray:
    """Core number of each vertex (Matula–Beck peeling, O(n + m))."""
    n = graph.n
    degree = graph.degrees().copy()
    max_deg = int(degree.max()) if n else 0
    # Bucket sort vertices by degree.
    bins = [0] * (max_deg + 2)
    for d in degree:
        bins[int(d)] += 1
    start = 0
    for d in range(max_deg + 1):
        count = bins[d]
        bins[d] = start
        start += count
    pos = np.zeros(n, dtype=np.int64)
    order = np.zeros(n, dtype=np.int64)
    fill = bins.copy()
    for v in range(n):
        pos[v] = fill[int(degree[v])]
        order[pos[v]] = v
        fill[int(degree[v])] += 1
    core = degree.copy()
    for i in range(n):
        v = order[i]
        for w in graph.neighbors(int(v)):
            if core[w] > core[v]:
                # Move w one bucket down (swap with first of its bucket).
                dw = int(core[w])
                first = bins[dw]
                u = order[first]
                if u != w:
                    order[first], order[pos[w]] = w, u
                    pos[u], pos[w] = pos[w], first
                bins[dw] += 1
                core[w] -= 1
    return core


def degeneracy(graph: Graph) -> int:
    """Degeneracy (max core number).

    Satisfies ``arboricity <= degeneracy <= 2*arboricity - 1``.
    """
    if graph.n == 0:
        return 0
    return int(core_numbers(graph).max())


def degeneracy_ordering(graph: Graph) -> list[int]:
    """A vertex ordering witnessing the degeneracy (smallest-last)."""
    n = graph.n
    removed = [False] * n
    degree = graph.degrees().tolist()
    import heapq

    heap = [(degree[v], v) for v in range(n)]
    heapq.heapify(heap)
    order: list[int] = []
    while heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != degree[v]:
            continue
        removed[v] = True
        order.append(v)
        for w in graph.neighbors(v):
            if not removed[w]:
                degree[w] -= 1
                heapq.heappush(heap, (degree[w], w))
    return order


def max_average_degree(graph: Graph) -> float:
    """Exact maximum average degree over all subgraphs, ``max_S 2|E(S)|/|S|``.

    Computed by Goldberg's reduction: the maximum density ``|E(S)|/|S|``
    is found by binary search over guesses ``g``, testing each guess with
    a single max-flow.  Since densities are rationals with denominator at
    most ``n``, O(log(n * m)) max-flows give the exact value.

    The paper (proof of Theorem 11) uses the fact that this quantity is
    within a factor 2 of the arboricity.
    """
    n, m = graph.n, graph.m
    if m == 0:
        return 0.0
    lo, hi = 0.0, float(m)
    # Distinct densities differ by at least 1/(n*(n-1)); binary search until
    # the interval is smaller than that, then snap to the achieved density.
    tol = 1.0 / (n * (n - 1) + 1)
    best_set: set[int] | None = None
    edge_list = graph.edge_list()
    while hi - lo > tol:
        guess = (lo + hi) / 2.0
        side = _goldberg_cut(graph, edge_list, guess)
        if side:
            lo = guess
            best_set = side
        else:
            hi = guess
    if best_set is None:
        # Densest subgraph is a single edge: density 1/2? No: any graph
        # with an edge has a subgraph of density >= 1/2 (one edge, 2 vts).
        best_set = set(graph.vertices())
    sub_edges = graph.induced_edge_count(best_set)
    return 2.0 * sub_edges / len(best_set)


def _goldberg_cut(
    graph: Graph, edge_list: list[tuple[int, int]], guess: float
) -> set[int] | None:
    """Return a non-empty S with density > guess, or None.

    Standard construction: source -> edge-node (cap 1), edge-node -> both
    endpoints (cap inf), vertex -> sink (cap guess).  Total flow < m iff
    some subgraph has density > guess, and the min-cut's source side
    (minus the source and edge nodes) realizes it.
    """
    n, m = graph.n, len(edge_list)
    source = 0
    sink = 1
    vert_base = 2
    edge_base = 2 + n
    net = FlowNetwork(2 + n + m)
    inf = float(m + 1)
    for idx, (u, v) in enumerate(edge_list):
        net.add_edge(source, edge_base + idx, 1.0)
        net.add_edge(edge_base + idx, vert_base + u, inf)
        net.add_edge(edge_base + idx, vert_base + v, inf)
    for u in range(n):
        net.add_edge(vert_base + u, sink, guess)
    flow = net.max_flow(source, sink)
    if flow >= m - 1e-9:
        return None
    side = net.min_cut_side(source)
    result = {u - vert_base for u in side if vert_base <= u < edge_base}
    return result or None


def arboricity_bounds(graph: Graph) -> tuple[int, int]:
    """Lower and upper bounds on the arboricity.

    * Lower bound: ``ceil(mad / 2)`` where ``mad`` is the exact maximum
      average degree (Nash-Williams gives ``arb >= ceil(max_S |E(S)| /
      (|S| - 1)) >= ceil(mad/2)``).
    * Upper bound: the degeneracy (every d-degenerate graph decomposes
      into d forests... more precisely arboricity <= degeneracy).

    For forests this returns ``(1, 1)``; for cliques ``K_n`` it returns
    ``(ceil((n-1)/2), n - 1)``-ish brackets, adequate for classifying the
    experiment workloads as bounded-arboricity or not.
    """
    if graph.m == 0:
        return (0, 0)
    mad = max_average_degree(graph)
    lower = max(1, math.ceil(mad / 2.0 - 1e-9))
    upper = max(lower, degeneracy(graph))
    return (lower, upper)


def max_common_neighbors(graph: Graph) -> int:
    """Maximum number of common neighbours over all vertex pairs.

    This is the quantity bounded by good-graph property P5.  Computed as
    the maximum off-diagonal entry of ``A @ A`` (dense for small graphs,
    sparse otherwise).
    """
    n = graph.n
    if n < 2:
        return 0
    if n <= 1500:
        a = graph.adjacency_dense().astype(np.int32)
        sq = a @ a
        np.fill_diagonal(sq, 0)
        return int(sq.max())
    a = graph.adjacency_csr_int32()
    sq = (a @ a).tolil()
    sq.setdiag(0)
    data = sq.tocsr().data
    return int(data.max()) if data.size else 0


def triangle_count(graph: Graph) -> int:
    """Total number of triangles (via trace of A^3 / 6 on the dense matrix
    for small graphs, neighbour-intersection otherwise)."""
    n = graph.n
    if n <= 1200:
        a = graph.adjacency_dense().astype(np.int64)
        return int(np.trace(a @ a @ a) // 6)
    count = 0
    for u in graph.vertices():
        nbrs_u = set(graph.neighbors(u))
        for v in graph.neighbors(u):
            if v > u:
                for w in graph.neighbors(v):
                    if w > v and w in nbrs_u:
                        count += 1
    return count


def theta_profile(graph: Graph, u: int, i: int) -> int:
    """The quantity θ_u(i) from equation (3) of the paper, approximately.

    θ_u(i) = max over S ⊆ N(u) with |S| <= i of |N(u) ∩ N+(S)|.

    Exact computation is exponential in ``i``; we use the standard greedy
    upper-bounding: repeatedly add to S the neighbour covering the most
    yet-uncovered vertices of N(u).  Greedy coverage is a lower bound on
    the max; to stay on the safe side for *upper* bounds we also return
    the trivial cap (see :func:`theta_upper_bound`).  This function
    returns the greedy (achievable) value, which the Lemma 13/14
    experiments use as an empirical proxy.
    """
    nbrs = set(graph.neighbors(u))
    if i <= 0 or not nbrs:
        return 0
    uncovered = set(nbrs)
    chosen = 0
    total = 0
    while chosen < i and uncovered:
        best_v = None
        best_gain = -1
        for v in nbrs:
            gain = len(uncovered & (set(graph.neighbors(v)) | {v}))
            if gain > best_gain:
                best_gain = gain
                best_v = v
        if best_v is None or best_gain <= 0:
            break
        uncovered -= set(graph.neighbors(best_v)) | {best_v}
        total += best_gain
        chosen += 1
    return total


def theta_upper_bound(graph: Graph, u: int, i: int) -> int:
    """A rigorous upper bound on θ_u(i).

    θ_u(i) <= min(deg(u), i * (1 + max common neighbours of u with any
    neighbour v)); the paper (proof of Lemma 23) uses the analogous bound
    θ_v(i) <= i * (6np² + 4) log n on good graphs via P5.
    """
    d = graph.degree(u)
    if i <= 0 or d == 0:
        return 0
    worst = 0
    for v in graph.neighbors(u):
        shared = len(set(graph.common_neighbors(u, v)))
        worst = max(worst, shared + 1)
    return min(d, i * worst)
