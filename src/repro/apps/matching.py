"""Maximal matching via self-stabilizing MIS on the line graph.

An independent set of L(G) selects edges of G no two of which share an
endpoint — a matching; maximality in L(G) is maximality of the
matching.  Running the paper's MIS processes on L(G) therefore yields a
self-stabilizing maximal-matching algorithm with constant state per
edge-agent (the standard "edge processes" model).
"""

from __future__ import annotations

import numpy as np

from repro.core.two_state import TwoStateMIS
from repro.graphs.graph import Graph
from repro.graphs.transforms import line_graph
from repro.sim.rng import CoinSource
from repro.sim.runner import run_until_stable


def matching_from_mis(
    mis_vertices: np.ndarray, edge_of_vertex: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Decode a line-graph MIS into the matched edge list."""
    return [edge_of_vertex[int(i)] for i in np.asarray(mis_vertices)]


def verify_maximal_matching(
    graph: Graph, matching: list[tuple[int, int]]
) -> None:
    """Raise ``AssertionError`` unless ``matching`` is a maximal matching."""
    used: set[int] = set()
    for u, v in matching:
        if not graph.has_edge(u, v):
            raise AssertionError(f"({u}, {v}) is not an edge")
        if u in used or v in used:
            raise AssertionError(f"endpoint reused at ({u}, {v})")
        used.add(u)
        used.add(v)
    for u, v in graph.edges():
        if u not in used and v not in used:
            raise AssertionError(
                f"matching not maximal: ({u}, {v}) addable"
            )


class SelfStabilizingMatching:
    """Distributed maximal matching on top of the 2-state MIS process."""

    def __init__(
        self,
        graph: Graph,
        coins: CoinSource | int | np.random.Generator | None = None,
        process_cls=TwoStateMIS,
    ) -> None:
        self.graph = graph
        self.lgraph, self.edge_of_vertex = line_graph(graph)
        self.process = process_cls(self.lgraph, coins=coins)

    def run(self, max_rounds: int = 1_000_000) -> list[tuple[int, int]]:
        """Run to stabilization; returns the verified maximal matching."""
        result = run_until_stable(self.process, max_rounds=max_rounds)
        if not result.stabilized:
            raise RuntimeError(
                f"matching did not stabilize within {max_rounds} rounds"
            )
        matching = matching_from_mis(result.mis, self.edge_of_vertex)
        verify_maximal_matching(self.graph, matching)
        return matching
