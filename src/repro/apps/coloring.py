"""(Δ+1)-coloring via self-stabilizing MIS (Luby's reduction, [24]).

Each vertex simulates Δ+1 virtual nodes, one per candidate color, on
the product graph of :func:`repro.graphs.transforms.color_product_graph`.
An MIS of the product picks exactly one color per vertex, and the picks
form a proper coloring:

* the palette clique forces ≤ 1 chosen color per vertex;
* the cross edges forbid equal colors across an edge of G;
* maximality forces ≥ 1 chosen color: if v had none, each (v, c) must
  have a chosen neighbour, which can only be (u, c) for u ~ v — but v
  has at most Δ neighbours and Δ+1 colors, a pigeonhole contradiction.

Because the underlying MIS process is self-stabilizing, so is the
coloring: corrupt every vertex's color choices and the system
re-converges to a proper coloring with no restart.
"""

from __future__ import annotations

import numpy as np

from repro.core.two_state import TwoStateMIS
from repro.graphs.graph import Graph
from repro.graphs.transforms import color_product_graph
from repro.sim.rng import CoinSource
from repro.sim.runner import run_until_stable


def coloring_from_mis(
    mis_vertices: np.ndarray, n: int, palette: int
) -> np.ndarray:
    """Decode a product-graph MIS into a color assignment.

    Returns an int array of length n with entries in ``0..palette-1``.

    Raises
    ------
    ValueError
        If some vertex has zero or multiple chosen colors (i.e. the
        input is not an MIS of the product graph).
    """
    colors = np.full(n, -1, dtype=np.int64)
    for pv in np.asarray(mis_vertices).tolist():
        v, c = divmod(int(pv), palette)
        if colors[v] != -1:
            raise ValueError(f"vertex {v} chose two colors")
        colors[v] = c
    missing = np.flatnonzero(colors < 0)
    if missing.size:
        raise ValueError(f"vertices without a color: {missing.tolist()}")
    return colors


def verify_proper_coloring(graph: Graph, colors: np.ndarray) -> None:
    """Raise ``AssertionError`` if the assignment is not proper."""
    colors = np.asarray(colors)
    if colors.shape != (graph.n,):
        raise ValueError("colors must have one entry per vertex")
    bad = [
        (u, v) for u, v in graph.edges() if colors[u] == colors[v]
    ]
    if bad:
        raise AssertionError(
            f"{len(bad)} monochromatic edge(s), e.g. {bad[:5]}"
        )


class SelfStabilizingColoring:
    """Distributed (Δ+1)-coloring on top of the 2-state MIS process.

    Parameters
    ----------
    graph:
        The graph to color.
    coins, process_cls:
        Passed to the underlying MIS process on the product graph
        (default :class:`TwoStateMIS`; any MISProcess works).
    palette:
        Number of colors (default Δ+1; fewer may not admit a coloring
        and then the underlying process simply cannot stabilize to a
        full assignment — callers own that choice).
    """

    def __init__(
        self,
        graph: Graph,
        coins: CoinSource | int | np.random.Generator | None = None,
        palette: int | None = None,
        process_cls=TwoStateMIS,
    ) -> None:
        self.graph = graph
        self.product, self.palette = color_product_graph(graph, palette)
        self.process = process_cls(self.product, coins=coins)

    def run(self, max_rounds: int = 1_000_000) -> np.ndarray:
        """Run to stabilization; returns the verified color assignment."""
        result = run_until_stable(self.process, max_rounds=max_rounds)
        if not result.stabilized:
            raise RuntimeError(
                f"coloring did not stabilize within {max_rounds} rounds"
            )
        colors = coloring_from_mis(
            result.mis, self.graph.n, self.palette
        )
        verify_proper_coloring(self.graph, colors)
        return colors

    def corrupt_all(self, rng: np.random.Generator | int | None = None) -> None:
        """Transient fault: randomize every virtual node's state."""
        gen = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        states = self.process.state_vector()
        if states.dtype == bool:
            self.process.corrupt(gen.random(len(states)) < 0.5)
        else:
            self.process.corrupt(
                gen.integers(0, 3, size=len(states)).astype(states.dtype)
            )
