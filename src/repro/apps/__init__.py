"""Applications built on the self-stabilizing MIS processes.

The paper's introduction motivates MIS by its role in distributed
symmetry breaking [24]; this package realizes the two classic
reductions *on top of the paper's processes*, so both applications
inherit self-stabilization, constant state per (virtual) node and weak
communication:

* :mod:`repro.apps.coloring` — (Δ+1)-coloring via MIS of the
  palette-product graph;
* :mod:`repro.apps.matching` — maximal matching via MIS of the line
  graph.
"""

from repro.apps.coloring import (
    SelfStabilizingColoring,
    coloring_from_mis,
    verify_proper_coloring,
)
from repro.apps.matching import (
    SelfStabilizingMatching,
    matching_from_mis,
    verify_maximal_matching,
)

__all__ = [
    "SelfStabilizingColoring",
    "coloring_from_mis",
    "verify_proper_coloring",
    "SelfStabilizingMatching",
    "matching_from_mis",
    "verify_maximal_matching",
]
