"""Graph and result serialization.

Downstream users need to move graphs and experiment outputs in and out
of the library:

* edge-list text files (one ``u v`` pair per line, ``#`` comments) —
  the lingua franca of graph datasets;
* JSON documents carrying a graph plus optional per-vertex state
  vectors (for archiving trajectories or hand-crafted counterexamples).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.graphs.graph import Graph


def write_edge_list(graph: Graph, path: str | pathlib.Path) -> None:
    """Write a graph as an edge-list text file.

    Format: first a ``# n=<n>`` header (so isolated vertices survive a
    round trip), then one ``u v`` pair per line.
    """
    path = pathlib.Path(path)
    with path.open("w") as handle:
        handle.write(f"# n={graph.n}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def read_edge_list(path: str | pathlib.Path) -> Graph:
    """Read a graph written by :func:`write_edge_list`.

    Also accepts headerless files (n is then inferred from the largest
    endpoint).  Blank lines and ``#`` comments are ignored; an ``n=``
    comment, when present, fixes the vertex count.
    """
    path = pathlib.Path(path)
    n: int | None = None
    edges: list[tuple[int, int]] = []
    with path.open() as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.startswith("n="):
                    n = int(body[2:])
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(
                    f"{path}:{lineno}: expected 'u v', got {line!r}"
                )
            edges.append((int(parts[0]), int(parts[1])))
    return Graph.from_edge_list(edges, n=n)


def graph_to_dict(
    graph: Graph, states: np.ndarray | None = None
) -> dict:
    """JSON-ready dict with the graph and an optional state vector."""
    doc: dict = {
        "n": graph.n,
        "edges": [[u, v] for u, v in graph.edges()],
    }
    if states is not None:
        states = np.asarray(states)
        if states.shape != (graph.n,):
            raise ValueError(
                f"states must have shape ({graph.n},), got {states.shape}"
            )
        doc["states"] = [int(s) for s in states]
        doc["states_dtype"] = "bool" if states.dtype == bool else "int"
    return doc


def graph_from_dict(doc: dict) -> tuple[Graph, np.ndarray | None]:
    """Inverse of :func:`graph_to_dict`."""
    graph = Graph(int(doc["n"]), [tuple(e) for e in doc["edges"]])
    states = None
    if "states" in doc:
        dtype = bool if doc.get("states_dtype") == "bool" else np.int8
        states = np.array(doc["states"], dtype=dtype)
    return graph, states


def write_json(
    graph: Graph,
    path: str | pathlib.Path,
    states: np.ndarray | None = None,
) -> None:
    """Write a graph (and optional states) as JSON."""
    pathlib.Path(path).write_text(
        json.dumps(graph_to_dict(graph, states))
    )


def read_json(path: str | pathlib.Path) -> tuple[Graph, np.ndarray | None]:
    """Read a graph (and optional states) written by :func:`write_json`."""
    return graph_from_dict(json.loads(pathlib.Path(path).read_text()))
