"""Terminal visualization of process states and trajectories.

Matplotlib is unavailable offline, so everything renders to text:

* :func:`render_states` — one character per vertex (``#`` black,
  ``.`` white, ``:`` gray), chunked into rows;
* :func:`render_grid_states` — state map for grid graphs laid out as
  the actual grid;
* :func:`render_timeline` — per-round rows of :func:`render_states`,
  annotated with |B_t| / |A_t| / |V_t|;
* :func:`state_histogram` — a horizontal-bar summary of a state vector.
"""

from __future__ import annotations

import numpy as np

from repro.core.states import BLACK, GRAY, WHITE

#: Glyphs per state for 3-color vectors (and bool: False/True → . / #).
GLYPHS = {WHITE: ".", GRAY: ":", BLACK: "#"}
BOOL_GLYPHS = {False: ".", True: "#"}


def _glyph_row(states: np.ndarray) -> str:
    states = np.asarray(states)
    if states.dtype == bool:
        return "".join(BOOL_GLYPHS[bool(s)] for s in states)
    return "".join(GLYPHS.get(int(s), "?") for s in states)


def render_states(states: np.ndarray, width: int = 64) -> str:
    """Render a state vector as glyph rows of at most ``width`` chars.

    Boolean vectors use ``.``/``#``; int8 3-color/3-state vectors use
    ``.``/``:``/``#`` (white/gray-or-black0/black-or-black1).
    """
    row = _glyph_row(states)
    if width < 1:
        raise ValueError("width must be >= 1")
    return "\n".join(
        row[i:i + width] for i in range(0, len(row), width)
    ) or ""


def render_grid_states(states: np.ndarray, rows: int, cols: int) -> str:
    """Render a state vector over a ``rows x cols`` grid layout."""
    states = np.asarray(states)
    if states.shape != (rows * cols,):
        raise ValueError(
            f"states must have shape ({rows * cols},), got {states.shape}"
        )
    glyphs = _glyph_row(states)
    return "\n".join(
        glyphs[r * cols:(r + 1) * cols] for r in range(rows)
    )


def render_timeline(
    process,
    rounds: int,
    width: int = 64,
    every: int = 1,
) -> str:
    """Step ``process`` and render one annotated state row per round.

    Only graphs small enough to fit one row (n <= width) render
    usefully; larger ones are truncated with an ellipsis marker.
    """
    if rounds < 0 or every < 1:
        raise ValueError("rounds >= 0 and every >= 1 required")
    lines = []
    for t in range(rounds + 1):
        if t % every == 0:
            states = process.state_vector()
            row = _glyph_row(states)
            if len(row) > width:
                row = row[:width - 1] + "…"
            black = int(process.black_mask().sum())
            active = int(process.active_mask().sum())
            unstable = int(process.unstable_mask().sum())
            lines.append(
                f"t={process.round:4d} |B|={black:4d} |A|={active:4d} "
                f"|V|={unstable:4d}  {row}"
            )
        if t < rounds:
            process.step()
    return "\n".join(lines)


def state_histogram(states: np.ndarray) -> str:
    """Horizontal-bar histogram of a state vector."""
    states = np.asarray(states)
    if states.dtype == bool:
        labels = {False: "white", True: "black"}
        values, counts = np.unique(states, return_counts=True)
        pairs = [(labels[bool(v)], int(c)) for v, c in zip(values, counts)]
    else:
        labels = {WHITE: "white", GRAY: "gray/black0", BLACK: "black"}
        values, counts = np.unique(states, return_counts=True)
        pairs = [
            (labels.get(int(v), str(v)), int(c))
            for v, c in zip(values, counts)
        ]
    total = sum(c for _, c in pairs) or 1
    bar_width = 40
    lines = []
    for label, count in pairs:
        bar = "█" * max(1, int(round(bar_width * count / total)))
        lines.append(f"{label:>12} {count:6d} {bar}")
    return "\n".join(lines)
