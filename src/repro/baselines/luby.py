"""Luby's randomized MIS algorithm (Appendix B, [24]).

The classical parallel MIS algorithm: in each phase every live vertex
draws a random priority; local minima join the MIS and are removed with
their neighbourhoods.  Terminates in O(log n) phases w.h.p.

It is the natural *non-self-stabilizing* baseline: it needs a clean
start (all vertices live), per-phase fresh Θ(log n)-bit priorities, and
message exchange of those priorities — everything the paper's processes
avoid.  Experiment E10 compares its round count to the processes'
stabilization times.

Two interfaces are provided: the one-shot :func:`luby_mis` and the
round-stepped :class:`LubyMIS` (for apples-to-apples round counting with
the MIS processes; one Luby phase is counted as two communication rounds
— one to exchange priorities, one to announce joins — matching the usual
message-passing accounting).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph


def luby_mis(
    graph: Graph, rng: np.random.Generator | int | None = None
) -> tuple[np.ndarray, int]:
    """Run Luby's algorithm to completion.

    Returns
    -------
    (mis, phases):
        ``mis`` is a sorted vertex array forming an MIS; ``phases`` is
        the number of phases executed.
    """
    gen = (
        rng
        if isinstance(rng, np.random.Generator)
        else np.random.default_rng(rng)
    )
    n = graph.n
    live = np.ones(n, dtype=bool)
    in_mis = np.zeros(n, dtype=bool)
    phases = 0
    while live.any():
        phases += 1
        priority = gen.random(n)
        priority[~live] = np.inf
        # A live vertex joins if its priority beats all live neighbours'.
        joins = np.zeros(n, dtype=bool)
        for u in np.flatnonzero(live):
            best = True
            for v in graph.neighbors(int(u)):
                if live[v] and priority[v] <= priority[u] and v != u:
                    # Tie-break by index for robustness (ties have
                    # probability 0 with float priorities).
                    if priority[v] < priority[u] or v < u:
                        best = False
                        break
            joins[u] = best
        in_mis |= joins
        # Remove joined vertices and their neighbourhoods.
        removed = joins.copy()
        for u in np.flatnonzero(joins):
            for v in graph.neighbors(int(u)):
                removed[v] = True
        live &= ~removed
    return np.flatnonzero(in_mis), phases


class LubyMIS:
    """Round-stepped Luby, mimicking the :class:`MISProcess` interface.

    Each phase costs two rounds (priority exchange + join announcement).
    ``is_stabilized`` is termination; ``black_mask`` is the MIS-so-far.
    """

    name = "luby"

    def __init__(
        self,
        graph: Graph,
        coins: np.random.Generator | int | None = None,
    ) -> None:
        self.graph = graph
        self.n = graph.n
        self._gen = (
            coins
            if isinstance(coins, np.random.Generator)
            else np.random.default_rng(coins)
        )
        self.live = np.ones(self.n, dtype=bool)
        self.in_mis = np.zeros(self.n, dtype=bool)
        self.round = 0
        self._phase_parity = 0
        self._pending_priority: np.ndarray | None = None

    def step(self, rounds: int = 1) -> None:
        """Advance by communication rounds (2 per Luby phase)."""
        for _ in range(rounds):
            if not self.live.any():
                self.round += 1
                continue
            if self._phase_parity == 0:
                self._pending_priority = self._gen.random(self.n)
                self._phase_parity = 1
            else:
                self._execute_phase(self._pending_priority)
                self._pending_priority = None
                self._phase_parity = 0
            self.round += 1

    def _execute_phase(self, priority: np.ndarray) -> None:
        joins = np.zeros(self.n, dtype=bool)
        for u in np.flatnonzero(self.live):
            best = True
            for v in self.graph.neighbors(int(u)):
                if self.live[v] and (
                    priority[v] < priority[u]
                    or (priority[v] == priority[u] and v < u)
                ):
                    best = False
                    break
            joins[u] = best
        self.in_mis |= joins
        removed = joins.copy()
        for u in np.flatnonzero(joins):
            for v in self.graph.neighbors(int(u)):
                removed[v] = True
        self.live &= ~removed

    def black_mask(self) -> np.ndarray:
        return self.in_mis.copy()

    def is_stabilized(self) -> bool:
        return not self.live.any()

    def mis(self) -> np.ndarray:
        if not self.is_stabilized():
            raise RuntimeError("Luby has not terminated")
        return np.flatnonzero(self.in_mis)
