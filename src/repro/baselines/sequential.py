"""The sequential self-stabilizing MIS algorithm ([28], [20]; §1).

Rule (one enabled vertex moves per step): a black vertex with a black
neighbour turns white; a white vertex with no black neighbour turns
black.  Under any *central daemon* (one vertex scheduled at a time,
adversarially), the algorithm stabilizes after each vertex moves at most
twice — the classical result the paper's 2-state process parallelizes.

Daemons provided:

* :class:`CentralDaemon` — fixed priority order (lowest enabled index).
* :class:`RandomDaemon` — uniformly random enabled vertex.
* :class:`AdversarialDaemon` — a worst-case-ish heuristic daemon that
  always schedules an enabled vertex with the *most* enabled neighbours
  (tries to prolong runs; useful to exhibit the 2-moves-per-vertex
  bound as an actual ceiling).

The paper also observes ([28], [31]) that randomizing the transitions
yields stabilization with probability 1 under a synchronous/distributed
daemon — that randomized synchronous variant *is* the 2-state MIS
process of Definition 4, implemented in :mod:`repro.core.two_state`.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph


class _Daemon:
    """Chooses which enabled vertex moves next."""

    def choose(
        self, enabled: np.ndarray, algo: "SequentialSelfStabilizingMIS"
    ) -> int:
        raise NotImplementedError


class CentralDaemon(_Daemon):
    """Schedules the lowest-index enabled vertex."""

    def choose(self, enabled, algo):
        return int(np.flatnonzero(enabled)[0])


class RandomDaemon(_Daemon):
    """Schedules a uniformly random enabled vertex."""

    def __init__(self, rng: np.random.Generator | int | None = None) -> None:
        self._gen = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )

    def choose(self, enabled, algo):
        idx = np.flatnonzero(enabled)
        return int(self._gen.choice(idx))


class AdversarialDaemon(_Daemon):
    """Heuristic worst case: the enabled vertex with most enabled neighbours.

    Ties broken by highest index.  This daemon maximizes churn and is
    used by tests to confirm the 2n move bound holds even then.
    """

    def choose(self, enabled, algo):
        best_u = -1
        best_score = -1
        for u in np.flatnonzero(enabled):
            score = sum(
                1 for v in algo.graph.neighbors(int(u)) if enabled[v]
            )
            if score > best_score or (
                score == best_score and int(u) > best_u
            ):
                best_score = score
                best_u = int(u)
        return best_u


class SequentialSelfStabilizingMIS:
    """The deterministic sequential algorithm under a pluggable daemon.

    Parameters
    ----------
    graph:
        The graph.
    init:
        Initial black mask (boolean array), or ``None`` for all-white.
    daemon:
        Scheduling daemon; default :class:`CentralDaemon`.

    Attributes
    ----------
    moves:
        Total moves executed so far.
    move_counts:
        Per-vertex move counters (the classical bound is <= 2 each
        under a central daemon).
    """

    name = "sequential"

    def __init__(
        self,
        graph: Graph,
        init: np.ndarray | None = None,
        daemon: _Daemon | None = None,
    ) -> None:
        self.graph = graph
        self.n = graph.n
        if init is None:
            self.black = np.zeros(self.n, dtype=bool)
        else:
            init = np.asarray(init, dtype=bool)
            if init.shape != (self.n,):
                raise ValueError("init mask has wrong shape")
            self.black = init.copy()
        self.daemon = daemon if daemon is not None else CentralDaemon()
        self.moves = 0
        self.move_counts = np.zeros(self.n, dtype=np.int64)

    def enabled_mask(self) -> np.ndarray:
        """Vertices whose rule is enabled (black conflicted / white lonely)."""
        out = np.zeros(self.n, dtype=bool)
        for u in range(self.n):
            has_black = any(self.black[v] for v in self.graph.neighbors(u))
            out[u] = (self.black[u] and has_black) or (
                not self.black[u] and not has_black
            )
        return out

    def step(self) -> bool:
        """Execute one daemon-chosen move; returns False if none enabled."""
        enabled = self.enabled_mask()
        if not enabled.any():
            return False
        u = self.daemon.choose(enabled, self)
        if not enabled[u]:
            raise RuntimeError("daemon chose a disabled vertex")
        self.black[u] = not self.black[u]
        self.moves += 1
        self.move_counts[u] += 1
        return True

    def run(self, max_moves: int | None = None) -> int:
        """Run until quiescent; returns the number of moves executed.

        ``max_moves`` defaults to ``2n + 1`` (the theory says 2n moves
        always suffice under a central daemon; exceeding the default
        raises, which the test suite uses as a theorem check).
        """
        budget = max_moves if max_moves is not None else 2 * self.n + 1
        start = self.moves
        while self.step():
            if self.moves - start > budget:
                raise RuntimeError(
                    f"exceeded move budget {budget}; daemon={type(self.daemon).__name__}"
                )
        return self.moves - start

    def mis(self) -> np.ndarray:
        """The black set (valid MIS once quiescent)."""
        return np.flatnonzero(self.black)

    def is_stabilized(self) -> bool:
        """Whether no rule is enabled."""
        return not self.enabled_mask().any()
