"""Baseline MIS algorithms the paper positions itself against.

* :mod:`repro.baselines.luby` — Luby's classic O(log n) randomized
  algorithm (not self-stabilizing; super-constant states/messages).
* :mod:`repro.baselines.greedy` — sequential greedy MIS (the centralized
  reference solution).
* :mod:`repro.baselines.sequential` — the sequential self-stabilizing
  deterministic algorithm of Shukla et al. [28] / Hedetniemi et al. [20]
  under central / adversarial daemons, plus its randomized variant that
  stabilizes under the synchronous daemon.
"""

from repro.baselines.luby import LubyMIS, luby_mis
from repro.baselines.greedy import greedy_mis, random_order_greedy_mis
from repro.baselines.sequential import (
    SequentialSelfStabilizingMIS,
    AdversarialDaemon,
    CentralDaemon,
    RandomDaemon,
)

__all__ = [
    "LubyMIS",
    "luby_mis",
    "greedy_mis",
    "random_order_greedy_mis",
    "SequentialSelfStabilizingMIS",
    "AdversarialDaemon",
    "CentralDaemon",
    "RandomDaemon",
]
