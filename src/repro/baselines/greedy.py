"""Greedy (sequential) MIS baselines.

The lexicographic greedy MIS is the centralized reference solution used
by tests (every graph has one, computed in O(n + m)); the random-order
variant is the classic sequential counterpart of Luby's algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph


def greedy_mis(graph: Graph, order: list[int] | None = None) -> np.ndarray:
    """Greedy MIS scanning vertices in the given order (default: 0..n-1).

    Returns a sorted vertex array.  The result is always a valid MIS.
    """
    n = graph.n
    if order is None:
        order = list(range(n))
    if sorted(order) != list(range(n)):
        raise ValueError("order must be a permutation of range(n)")
    blocked = np.zeros(n, dtype=bool)
    chosen = np.zeros(n, dtype=bool)
    for u in order:
        if not blocked[u]:
            chosen[u] = True
            blocked[u] = True
            for v in graph.neighbors(u):
                blocked[v] = True
    return np.flatnonzero(chosen)


def random_order_greedy_mis(
    graph: Graph, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Greedy MIS over a uniformly random vertex order."""
    gen = (
        rng
        if isinstance(rng, np.random.Generator)
        else np.random.default_rng(rng)
    )
    order = gen.permutation(graph.n).tolist()
    return greedy_mis(graph, order)
