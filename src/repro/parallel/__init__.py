"""Master/worker fleet execution over zero-copy shared-memory graphs.

The multi-core path of the Monte-Carlo layer (the ROADMAP's
master/worker open item, in the Ganeti-jqueue mold):

* :mod:`~repro.parallel.shared_graph` — publish every distinct graph
  of a fleet once into a POSIX shared-memory segment; workers rebuild
  them as read-only numpy views over one mmap (zero copies), with
  unlink-on-exit hygiene on every path.
* :mod:`~repro.parallel.jobs` — the swap pickler that replaces graph /
  CSR / NeighborOps references with tokens, plus the
  :class:`JobQueue` job-spec transport that replaced factory pickling.
* :mod:`~repro.parallel.pool` — the persistent :class:`WorkerPool`
  (crash detection, stop sentinels, ``n_jobs`` resolution).
* :mod:`~repro.parallel.worker` — the dumb module-level worker loop.
* :mod:`~repro.parallel.fleet` — replica-range sharding and state
  writeback; bitwise-identical to the serial path for any worker
  count or shard boundaries.
* :mod:`~repro.parallel.config` — a process-wide default ``n_jobs``
  for entry points (``python -m repro.experiments run E4 --jobs
  auto``).

Users normally never import this package directly: pass
``n_jobs="auto"`` (or an int) to
:func:`repro.sim.runner.run_many_until_stable`,
:func:`repro.sim.montecarlo.estimate_stabilization_time`, or
:func:`repro.sim.montecarlo.sweep_stabilization_times`.
"""

from repro.parallel.config import (
    default_n_jobs,
    get_default_n_jobs,
    set_default_n_jobs,
)
from repro.parallel.fleet import (
    adopt_state,
    fleet_shards,
    run_fleet_sharded,
    shard_ranges,
)
from repro.parallel.jobs import (
    GraphRegistry,
    JobQueue,
    ShardJob,
    ShardResult,
)
from repro.parallel.pool import (
    WorkerCrashError,
    WorkerPool,
    cpu_count,
    resolve_n_jobs,
)
from repro.parallel.shared_graph import (
    AttachedGraphStore,
    SharedGraphHandle,
    SharedGraphStore,
    leaked_segments,
)
from repro.parallel.worker import worker_main

__all__ = [
    "AttachedGraphStore",
    "GraphRegistry",
    "JobQueue",
    "SharedGraphHandle",
    "SharedGraphStore",
    "ShardJob",
    "ShardResult",
    "WorkerCrashError",
    "WorkerPool",
    "adopt_state",
    "cpu_count",
    "default_n_jobs",
    "fleet_shards",
    "get_default_n_jobs",
    "leaked_segments",
    "resolve_n_jobs",
    "run_fleet_sharded",
    "set_default_n_jobs",
    "shard_ranges",
    "worker_main",
]
