"""Master/worker fleet execution over zero-copy shared-memory graphs.

The multi-core path of the Monte-Carlo layer (the ROADMAP's
master/worker open item, in the Ganeti-jqueue mold), made self-healing
in PR 9:

* :mod:`~repro.parallel.shared_graph` — publish every distinct graph
  of a fleet once into a POSIX shared-memory segment; workers rebuild
  them as read-only numpy views over one mmap (zero copies), with
  unlink-on-exit hygiene on every path (including the atexit/SIGTERM
  backstop's :func:`unlink_all_stores`).
* :mod:`~repro.parallel.jobs` — the swap pickler that replaces graph /
  CSR / NeighborOps references with tokens, plus the
  :class:`JobQueue` job-spec transport that replaced factory pickling.
* :mod:`~repro.parallel.pool` — the persistent :class:`WorkerPool`
  (crash detection, stop sentinels, ``n_jobs`` resolution) and the
  shared teardown machinery: the join → terminate → kill escalation,
  zombie reporting, and :func:`install_signal_backstop`.
* :mod:`~repro.parallel.worker` — the dumb module-level worker loop,
  with the chaos-policy fault hook.
* :mod:`~repro.parallel.supervisor` — the self-healing
  :class:`SupervisedPool`: worker respawn, bounded shard retry with
  exponential backoff (:mod:`~repro.parallel.retry`), per-shard
  deadlines with in-process degradation, poisoned-result quarantine.
* :mod:`~repro.parallel.chaos` — the deterministic fault injector
  (:class:`ChaosPolicy`) that makes every recovery path reproducibly
  testable.
* :mod:`~repro.parallel.fleet` — replica-range sharding, checkpoint
  journaling, and state writeback; bitwise-identical to the serial
  path for any worker count, shard boundaries, or fault schedule.
* :mod:`~repro.parallel.config` — process-wide default ``n_jobs`` and
  supervision defaults for entry points (``python -m repro.experiments
  run E4 --jobs auto``).

Users normally never import this package directly: pass
``n_jobs="auto"`` (or an int) to
:func:`repro.sim.runner.run_many_until_stable`,
:func:`repro.sim.montecarlo.estimate_stabilization_time`, or
:func:`repro.sim.montecarlo.sweep_stabilization_times`.  ``python -m
repro.parallel --doctor`` self-checks the machinery on the current
machine.
"""

from repro.parallel.chaos import (
    CHAOS_KILL_EXIT,
    FAULT_KINDS,
    POISON_PAYLOAD,
    ChaosPolicy,
)
from repro.parallel.config import (
    SupervisionDefaults,
    default_n_jobs,
    default_supervision,
    get_default_n_jobs,
    get_default_supervision,
    set_default_n_jobs,
    set_default_supervision,
)
from repro.parallel.fleet import (
    adopt_state,
    fleet_shards,
    run_fleet_sharded,
    shard_key,
    shard_ranges,
)
from repro.parallel.jobs import (
    GraphRegistry,
    JobQueue,
    ShardJob,
    ShardResult,
)
from repro.parallel.pool import (
    WORKER_NAME_PREFIX,
    WorkerCrashError,
    WorkerPool,
    cpu_count,
    install_signal_backstop,
    resolve_n_jobs,
    shutdown_processes,
)
from repro.parallel.retry import RetryPolicy, ShardFailedError
from repro.parallel.shared_graph import (
    AttachedGraphStore,
    SharedGraphHandle,
    SharedGraphStore,
    leaked_segments,
    unlink_all_stores,
)
from repro.parallel.supervisor import (
    SupervisedPool,
    SupervisionEvent,
    iter_chaos_fault_plan,
    supervised_pool_for,
)
from repro.parallel.worker import run_shard, worker_main

__all__ = [
    "AttachedGraphStore",
    "CHAOS_KILL_EXIT",
    "ChaosPolicy",
    "FAULT_KINDS",
    "GraphRegistry",
    "JobQueue",
    "POISON_PAYLOAD",
    "RetryPolicy",
    "ShardFailedError",
    "ShardJob",
    "ShardResult",
    "SharedGraphHandle",
    "SharedGraphStore",
    "SupervisedPool",
    "SupervisionDefaults",
    "SupervisionEvent",
    "WORKER_NAME_PREFIX",
    "WorkerCrashError",
    "WorkerPool",
    "adopt_state",
    "cpu_count",
    "default_n_jobs",
    "default_supervision",
    "fleet_shards",
    "get_default_n_jobs",
    "get_default_supervision",
    "install_signal_backstop",
    "iter_chaos_fault_plan",
    "leaked_segments",
    "resolve_n_jobs",
    "run_fleet_sharded",
    "run_shard",
    "set_default_n_jobs",
    "set_default_supervision",
    "shard_key",
    "shard_ranges",
    "shutdown_processes",
    "supervised_pool_for",
    "unlink_all_stores",
    "worker_main",
]
