"""Self-healing worker pool: supervision, retry, deadlines, degradation.

PR 8's :class:`~repro.parallel.pool.WorkerPool` detects a dead worker
only to abort the whole campaign with a fatal
:class:`~repro.parallel.pool.WorkerCrashError`.  The
:class:`SupervisedPool` here makes the execution substrate as
self-stabilizing as the algorithm it simulates: crashed workers are
respawned and their in-flight shards re-dispatched with bounded,
exponentially backed-off retries; shards that out-live a per-shard
deadline get their straggler killed and gracefully degrade to
in-process execution; poisoned results are quarantined and retried.
All of it is reproducibly testable through the deterministic
:class:`~repro.parallel.chaos.ChaosPolicy` fault injector.

Supervision state machine (per shard)::

    READY ──dispatch──▶ IN-FLIGHT ──ok+valid──────────▶ DONE
      ▲                    │ worker died ──┐
      │                    │ invalid result┴─▶ RETRY-WAIT (backoff)
      │                    │                     │ attempts left
      │                    │ deadline expired    └─▶ READY
      │                    ▼                     │ exhausted
      │               kill straggler             ▼
      │                    │ local_runner   ShardFailedError
      └────(respawn is a   ▼
       worker-side event) DONE (in-process degradation)

Master-side scheduling makes this race-free: each worker owns a
private task queue and holds at most one in-flight shard, so the
supervisor always knows exactly which attempt died with which worker —
no started-message handshake, no lost-job window.

Determinism contract: a re-dispatched or degraded shard re-runs from
the *original* job payload, and every replica owns an independent coin
stream, so campaign results under any fault schedule are
bitwise-identical to the fault-free serial run.  Retry backoff is
deterministic (no jitter); only wall clock varies.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import queue as queue_mod
import time
from collections import deque
from dataclasses import dataclass, replace
from types import TracebackType
from typing import Any, Callable, Iterable, Sequence

from repro.parallel.chaos import ChaosPolicy, ShardKey
from repro.parallel.jobs import ShardJob, ShardResult
from repro.parallel.pool import (
    _LIVE_POOLS,
    _POLL_INTERVAL,
    WORKER_NAME_PREFIX,
    _report_zombies,
    shutdown_processes,
)
from repro.parallel.retry import RetryPolicy, ShardFailedError
from repro.parallel.worker import worker_main

#: Floor on poll timeouts so deadline/backoff wakeups never busy-spin.
_MIN_WAIT = 0.005


@dataclass(frozen=True)
class SupervisionEvent:
    """One supervision decision, for tests, the doctor CLI, and logs.

    ``kind`` is one of ``"respawn"`` (a dead worker was replaced),
    ``"retry"`` (an attempt was re-dispatched), ``"quarantine"`` (a
    result failed validation), ``"deadline-kill"`` (a straggler was
    killed), or ``"degrade"`` (a shard ran in-process).
    """

    kind: str
    shard: ShardKey | None
    attempt: int
    detail: str


class _Slot:
    """One supervised worker: private task queue + current assignment."""

    __slots__ = ("proc", "tasks", "index", "generation", "job", "job_id",
                 "started")

    def __init__(
        self, proc: Any, tasks: Any, index: int, generation: int
    ) -> None:
        self.proc = proc
        self.tasks = tasks
        self.index = index
        self.generation = generation
        self.job: ShardJob | None = None
        self.job_id: int | None = None
        self.started = 0.0


class SupervisedPool:
    """A fixed-width pool of supervised, respawnable worker processes.

    Parameters
    ----------
    workers:
        Pool width, taken verbatim (callers clamp via
        :func:`~repro.parallel.pool.resolve_n_jobs`).
    retry:
        Re-dispatch policy for crashed/poisoned shards; ``None`` means
        the process-wide default of :mod:`repro.parallel.config` (and
        failing that, ``RetryPolicy()``).
    deadline:
        Per-shard wall-clock deadline in seconds.  On expiry the
        straggling worker is killed and the shard degrades to
        in-process execution (when the dispatcher provides a local
        runner) or is retried.  ``None`` (the default, modulo the
        config default) disables deadlines.
    chaos:
        Deterministic fault injector threaded into every worker;
        ``None`` means the config default (normally: no chaos).
    start_method:
        As for :class:`~repro.parallel.pool.WorkerPool`.

    Use as a context manager or call :meth:`close` in a ``finally``;
    the atexit/SIGTERM backstop of :mod:`repro.parallel.pool` catches
    owners that never get there.
    """

    def __init__(
        self,
        workers: int,
        *,
        retry: RetryPolicy | None = None,
        deadline: float | None = None,
        chaos: ChaosPolicy | None = None,
        start_method: str | None = None,
    ) -> None:
        from repro.parallel.config import get_default_supervision

        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be > 0 seconds, got {deadline}")
        defaults = get_default_supervision()
        self.retry = retry if retry is not None else (
            defaults.retry if defaults.retry is not None else RetryPolicy()
        )
        self.deadline = deadline if deadline is not None else defaults.deadline
        self.chaos = chaos if chaos is not None else defaults.chaos
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = mp.get_context(start_method)
        self._results: Any = self._ctx.Queue()
        self._next_id = 0
        self._closed = False
        self.respawns = 0
        #: Supervision decisions, in order — the doctor CLI's evidence.
        self.events: list[SupervisionEvent] = []
        self._slots = [self._spawn(i, 0) for i in range(workers)]
        _LIVE_POOLS.add(self)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, index: int, generation: int) -> _Slot:
        tasks = self._ctx.Queue()
        proc = self._ctx.Process(
            target=worker_main,
            args=(tasks, self._results, self.chaos),
            daemon=True,
            name=f"{WORKER_NAME_PREFIX}{index}g{generation}",
        )
        proc.start()
        return _Slot(proc, tasks, index, generation)

    def _respawn(self, index: int, detail: str) -> None:
        """Replace a dead slot with a fresh worker (fresh queue too —
        the dead worker's queue may still hold its undelivered job)."""
        slot = self._slots[index]
        slot.tasks.close()
        slot.tasks.cancel_join_thread()
        slot.proc.join(timeout=1.0)
        self.respawns += 1
        self._slots[index] = self._spawn(index, slot.generation + 1)
        self._event("respawn", None, 0, detail)

    def _kill_slot(self, index: int) -> None:
        """Forcibly stop one straggling worker (terminate → kill)."""
        proc = self._slots[index].proc
        proc.terminate()
        proc.join(timeout=1.0)
        if proc.is_alive():  # pragma: no cover - terminate nearly always
            proc.kill()
            proc.join(timeout=1.0)

    @property
    def workers(self) -> int:
        """The pool width."""
        return len(self._slots)

    def _event(
        self, kind: str, shard: ShardKey | None, attempt: int, detail: str
    ) -> None:
        self.events.append(SupervisionEvent(kind, shard, attempt, detail))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _drain(self, timeout: float) -> tuple[int, str, Any] | None:
        """One results-queue read; ``None`` on timeout.

        A seam for the interrupt-hygiene tests, which patch it to
        raise :class:`KeyboardInterrupt` mid-campaign.
        """
        try:
            item: tuple[int, str, Any] = self._results.get(timeout=timeout)
            return item
        except queue_mod.Empty:
            return None

    def run_jobs(
        self,
        jobs: Sequence[ShardJob],
        *,
        local_runner: Callable[[ShardJob], ShardResult] | None = None,
        validate: Callable[[ShardJob, ShardResult], bool] | None = None,
        on_result: Callable[[ShardKey, ShardResult], None] | None = None,
    ) -> dict[ShardKey, ShardResult]:
        """Run shard jobs to completion under supervision.

        Parameters
        ----------
        jobs:
            Shard jobs with pairwise-distinct ``indices`` (payloads
            are pre-pickled bytes; the callables below all stay on the
            master side — no pickle boundary, see the repro-lint
            ``parallel-safety`` exemption).
        local_runner:
            In-process executor for a job whose deadline expired (the
            graceful-degradation path).  Without one, deadline expiry
            consumes a retry instead.
        validate:
            Master-side result check; a failing result is quarantined
            and the shard retried (the poisoned-result path).
        on_result:
            Called with ``(shard, result)`` the moment each shard
            completes — the checkpoint-journal hook, invoked *before*
            any later shard can fail, so partial results are always
            persisted first.

        Returns
        -------
        ``{shard indices: ShardResult}`` for every job.

        Raises
        ------
        ShardFailedError
            When a shard exhausts ``retry.max_retries``; completed
            shards have already been delivered through ``on_result``.
        RuntimeError
            For Python-level worker exceptions (deterministic job
            bugs; retrying cannot help, so they stay fail-fast).
        """
        if self._closed:
            raise RuntimeError("cannot dispatch on a closed SupervisedPool")
        pending = list(jobs)
        keys = [tuple(job.indices) for job in pending]
        if len(set(keys)) != len(keys):
            raise ValueError("shard jobs must have distinct indices")
        ready: deque[ShardJob] = deque(pending)
        sleeping: list[tuple[float, int, ShardJob]] = []
        seq = 0
        done: dict[ShardKey, ShardResult] = {}
        inflight: dict[int, _Slot] = {}

        def record(key: ShardKey, result: ShardResult) -> None:
            done[key] = result
            if on_result is not None:
                on_result(key, result)

        def retry_or_fail(job: ShardJob, reason: str) -> None:
            nonlocal seq
            attempts = job.attempt + 1
            if job.attempt >= self.retry.max_retries:
                raise ShardFailedError(
                    tuple(job.indices),
                    attempts,
                    reason,
                    chaos_seed=(
                        self.chaos.seed if self.chaos is not None else None
                    ),
                )
            delay = self.retry.delay(job.attempt)
            self._event(
                "retry",
                tuple(job.indices),
                attempts,
                f"{reason}; re-dispatching attempt {attempts} "
                f"after {delay:.3g}s",
            )
            next_job = replace(job, attempt=attempts)
            if delay <= 0:
                ready.append(next_job)
            else:
                seq += 1
                heapq.heappush(
                    sleeping, (time.monotonic() + delay, seq, next_job)
                )

        try:
            while len(done) < len(pending):
                now = time.monotonic()
                while sleeping and sleeping[0][0] <= now:
                    _, _, job = heapq.heappop(sleeping)
                    ready.append(job)
                for slot in self._slots:
                    if slot.job is None and ready:
                        job = ready.popleft()
                        job_id = self._next_id
                        self._next_id += 1
                        slot.job = job
                        slot.job_id = job_id
                        slot.started = time.monotonic()
                        inflight[job_id] = slot
                        slot.tasks.put((job_id, job))
                timeout = _POLL_INTERVAL
                if sleeping:
                    timeout = min(timeout, sleeping[0][0] - now)
                if self.deadline is not None:
                    for slot in self._slots:
                        if slot.job is not None:
                            timeout = min(
                                timeout,
                                slot.started + self.deadline - now,
                            )
                item = self._drain(max(timeout, _MIN_WAIT))
                if item is not None:
                    job_id, status, value = item
                    slot_or_none = inflight.pop(job_id, None)
                    if slot_or_none is not None:
                        slot = slot_or_none
                        finished = slot.job
                        assert finished is not None
                        slot.job = None
                        slot.job_id = None
                        key = tuple(finished.indices)
                        if status == "error":
                            raise RuntimeError(
                                f"worker job {job_id} raised:\n{value}"
                            )
                        if validate is not None and not validate(
                            finished, value
                        ):
                            self._event(
                                "quarantine",
                                key,
                                finished.attempt,
                                "result failed validation; quarantined",
                            )
                            retry_or_fail(finished, "poisoned result")
                        else:
                            record(key, value)
                    # else: stale result from an abandoned attempt
                for index in range(len(self._slots)):
                    slot = self._slots[index]
                    exitcode = slot.proc.exitcode
                    if exitcode is None:
                        continue
                    died_job, died_id = slot.job, slot.job_id
                    self._respawn(
                        index, f"worker died (exit code {exitcode})"
                    )
                    if died_job is not None:
                        if died_id is not None:
                            inflight.pop(died_id, None)
                        retry_or_fail(
                            died_job, f"worker died (exit code {exitcode})"
                        )
                if self.deadline is not None:
                    now = time.monotonic()
                    for index in range(len(self._slots)):
                        slot = self._slots[index]
                        late_job = slot.job
                        if (
                            late_job is None
                            or now - slot.started <= self.deadline
                        ):
                            continue
                        if slot.job_id is not None:
                            inflight.pop(slot.job_id, None)
                        key = tuple(late_job.indices)
                        self._event(
                            "deadline-kill",
                            key,
                            late_job.attempt,
                            f"shard exceeded {self.deadline}s deadline; "
                            "killing straggler",
                        )
                        self._kill_slot(index)
                        self._respawn(index, "deadline straggler replaced")
                        if local_runner is not None:
                            self._event(
                                "degrade",
                                key,
                                late_job.attempt,
                                "running shard in-process",
                            )
                            record(key, local_runner(late_job))
                        else:
                            retry_or_fail(late_job, "deadline expired")
        finally:
            # Abandon whatever is still in flight (exception paths):
            # late results are dropped as stale, and a busy worker
            # simply runs its backlog before the next dispatch.
            for slot in self._slots:
                slot.job = None
                slot.job_id = None
        return done

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> list[int]:
        """Stop the workers and release the queues (idempotent).

        Same contract as :meth:`WorkerPool.close
        <repro.parallel.pool.WorkerPool.close>`: sentinel, then the
        join → terminate → kill escalation, with survivors reported
        via :class:`RuntimeWarning` and returned as pids.
        """
        if self._closed:
            return []
        self._closed = True
        _LIVE_POOLS.discard(self)
        for slot in self._slots:
            try:
                slot.tasks.put(None)
            except (ValueError, OSError):  # pragma: no cover - queue gone
                pass
        zombies = _report_zombies(
            shutdown_processes([slot.proc for slot in self._slots])
        )
        for slot in self._slots:
            slot.tasks.close()
            slot.tasks.cancel_join_thread()
        self._results.close()
        self._results.cancel_join_thread()
        return zombies

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


def supervised_pool_for(
    jobs: int, n_jobs: int | str | None, **kwargs: Any
) -> SupervisedPool:
    """A SupervisedPool sized for ``jobs`` shards under an ``n_jobs`` spec."""
    from repro.parallel.pool import resolve_n_jobs

    return SupervisedPool(
        max(1, min(jobs, resolve_n_jobs(n_jobs))), **kwargs
    )


def iter_chaos_fault_plan(
    ranges: Iterable[ShardKey], faults: Sequence[str]
) -> dict[tuple[ShardKey, int], str]:
    """Zip shard ranges with first-attempt faults (smoke-test helper).

    Builds a scripted :class:`~repro.parallel.chaos.ChaosPolicy` plan
    injecting ``faults[i]`` into attempt 0 of the i-th range; ranges
    beyond ``faults`` run clean.
    """
    plan: dict[tuple[ShardKey, int], str] = {}
    for key, fault in zip(ranges, faults):
        plan[(tuple(key), 0)] = fault
    return plan
