"""Retry policy and terminal failure for supervised shard dispatch.

A shard that dies with its worker (or comes back poisoned) is
re-dispatched by the :class:`~repro.parallel.supervisor.SupervisedPool`
from its *original* job payload — every replica owns an independent
coin stream, so a re-run reproduces the lost attempt bit for bit and
retrying is always semantically safe.  What must be bounded is only
*wall clock*: :class:`RetryPolicy` caps the attempt count and spaces
attempts with deterministic exponential backoff (no jitter — a seeded
campaign schedules its retries identically on every run).

When the cap is exhausted the supervisor raises
:class:`ShardFailedError`, which carries the witness shard range, the
attempt count, and the active chaos seed (if any) so a failing seeded
chaos run can be replayed exactly.  It subclasses
:class:`~repro.parallel.pool.WorkerCrashError`: callers that handled
the PR 8 fatal crash keep working, they just see it only after the
retry budget is spent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.pool import WorkerCrashError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded re-dispatch with deterministic exponential backoff.

    Attempt ``k`` (0-based) that fails is re-dispatched after
    ``min(backoff_base * backoff_factor**k, backoff_max)`` seconds, up
    to ``max_retries`` re-dispatches (so a shard is attempted at most
    ``max_retries + 1`` times).  ``max_retries=0`` restores the PR 8
    fail-fast behavior.
    """

    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def delay(self, attempt: int) -> float:
        """Seconds to wait before re-dispatching after failed ``attempt``."""
        return min(
            self.backoff_base * self.backoff_factor ** max(attempt, 0),
            self.backoff_max,
        )


class ShardFailedError(WorkerCrashError):
    """A shard exhausted its retry budget.

    Attributes
    ----------
    indices:
        The witness shard's replica range ``(lo, hi)``.
    attempts:
        How many times the shard was attempted (including the first).
    chaos_seed:
        Seed of the active :class:`~repro.parallel.chaos.ChaosPolicy`,
        or ``None`` when no chaos was injected — enough to replay a
        failing seeded chaos campaign exactly.
    reason:
        Human-readable description of the final attempt's failure.
    """

    def __init__(
        self,
        indices: tuple[int, int],
        attempts: int,
        reason: str,
        chaos_seed: int | None = None,
    ) -> None:
        self.indices = indices
        self.attempts = attempts
        self.reason = reason
        self.chaos_seed = chaos_seed
        chaos = (
            f" [chaos seed {chaos_seed}]" if chaos_seed is not None else ""
        )
        super().__init__(
            f"shard {indices} failed after {attempts} attempt(s): "
            f"{reason}{chaos}"
        )
