"""Zero-copy publication of graphs into POSIX shared memory.

The master/worker fleet architecture (:mod:`repro.parallel`) never
ships adjacency structure through a queue.  The master publishes every
distinct graph of a fleet *once*: all CSR arrays are packed, 8-byte
aligned, into a single ``multiprocessing.shared_memory`` segment, and
workers reconstruct each graph as read-only numpy views over one mmap
of that segment — zero copies, one page-table entry per worker, no
per-job adjacency bytes.

Lifecycle contract (the shared-memory hygiene rules):

* :class:`SharedGraphStore` owns the segment.  It is a context manager
  whose exit **unlinks** the segment; a ``weakref.finalize`` backstop
  unlinks it even if the owner is dropped without ``close()`` (e.g. an
  exception path that never reaches the ``finally``).  POSIX semantics
  make unlink safe while workers are still attached: their mappings
  survive until they close, but the name disappears from ``/dev/shm``
  immediately, so nothing can leak past the master.
* :class:`AttachedGraphStore` (the worker side) attaches *untracked*:
  CPython registers attach-side segments with the per-process resource
  tracker (cpython#82300), which would double-unlink and warn at worker
  exit; :func:`_attach_untracked` uses 3.13's ``track=False`` when
  available and deregisters by hand on 3.11/3.12.
* :func:`leaked_segments` lists live segments created by this module —
  the regression tests' leak oracle.
"""

from __future__ import annotations

import os
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from types import TracebackType
from typing import Sequence

import numpy as np

from repro.graphs.graph import Graph

#: Prefix of every segment created by :class:`SharedGraphStore` —
#: recognizable in ``/dev/shm`` listings, which is what the leak
#: regression tests scan for.
SEGMENT_PREFIX = "repro-graphs-"

#: Byte alignment of every array packed into a segment (int64-safe).
_ALIGN = 8

#: Every open master-side store, for the atexit/SIGTERM backstop: a
#: fatal signal must not strand ``/dev/shm`` entries any more than an
#: exception may.  Stores de-register on close.
_LIVE_STORES: "weakref.WeakSet[SharedGraphStore]" = weakref.WeakSet()


def unlink_all_stores() -> list[str]:
    """Close every still-open :class:`SharedGraphStore` (backstop).

    Called by the :mod:`repro.parallel.pool` atexit/SIGTERM backstop;
    idempotent.  Returns the unlinked segment names.
    """
    names: list[str] = []
    for store in list(_LIVE_STORES):
        names.append(store.handle.segment)
        try:
            store.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
    return names


def _aligned(offset: int) -> int:
    """Round ``offset`` up to the packing alignment."""
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _ignore_registration(name: str, rtype: str) -> None:
    """No-op stand-in for ``resource_tracker.register`` during attach."""


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker tracking.

    ``SharedMemory(name)`` registers the segment with the resource
    tracker even on the attach side (cpython#82300): at attacher exit
    the tracker unlinks a segment it never owned and emits bogus leak
    warnings.  Python 3.13 grew ``track=False`` for exactly this; on
    3.11/3.12 the registration is suppressed by swapping ``register``
    out around the constructor.  (Calling ``unregister`` *after* the
    fact would be wrong: forked workers share the master's tracker
    process, so an attach-side unregister erases the creator's
    registration.)
    """
    try:
        return shared_memory.SharedMemory(
            name=name, create=False, track=False  # type: ignore[call-arg]
        )
    except TypeError:  # Python < 3.13: no track parameter
        pass
    register = resource_tracker.register
    resource_tracker.register = _ignore_registration
    try:
        return shared_memory.SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = register


def _unlink_segment(name: str) -> None:
    """Unlink ``name`` if it still exists (idempotent finalizer)."""
    try:
        shm = _attach_untracked(name)
    except FileNotFoundError:
        return
    shm.unlink()
    shm.close()


def leaked_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of live shared-memory segments matching ``prefix``.

    Scans ``/dev/shm`` (returns ``[]`` on platforms without it).  After
    every pool shutdown — clean or crashed — this must be empty; the
    hygiene regression tests assert exactly that.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux
        return []
    return sorted(e for e in os.listdir(root) if e.startswith(prefix))


@dataclass(frozen=True)
class GraphEntry:
    """Location of one graph's CSR arrays inside a segment."""

    n: int
    m: int
    indptr_dtype: str
    indices_dtype: str
    indptr_offset: int
    indices_offset: int


@dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable description of a published store.

    This is all a worker needs to rebuild every graph: the segment name
    plus per-graph offsets/dtypes.  A handle is a few hundred bytes
    regardless of graph size — it rides inside every job spec.
    """

    segment: str
    entries: tuple[GraphEntry, ...]
    nbytes: int

    def attach(self) -> AttachedGraphStore:
        """Map the segment and rebuild the graphs as read-only views."""
        return AttachedGraphStore(self)


def _view_graph(buf: memoryview, entry: GraphEntry) -> Graph:
    """Rebuild one graph as read-only views into a mapped segment."""
    indptr = np.frombuffer(
        buf,
        dtype=np.dtype(entry.indptr_dtype),
        count=entry.n + 1,
        offset=entry.indptr_offset,
    )
    indices = np.frombuffer(
        buf,
        dtype=np.dtype(entry.indices_dtype),
        count=2 * entry.m,
        offset=entry.indices_offset,
    )
    indptr.flags.writeable = False
    indices.flags.writeable = False
    return Graph.from_csr_arrays(entry.n, entry.m, indptr, indices)


class AttachedGraphStore:
    """Worker-side view of a published store: one mmap, view graphs.

    ``graphs`` holds one :class:`Graph` per published graph, in
    publication order, each backed by read-only views into the shared
    mapping.  The store keeps the mapping alive; :meth:`close` drops
    the graphs and unmaps (tolerating views that escaped — the mapping
    then lives until they are garbage collected, which cannot leak the
    segment itself: only the master's unlink controls that).
    """

    def __init__(self, handle: SharedGraphHandle) -> None:
        self.handle = handle
        self._shm = _attach_untracked(handle.segment)
        self.graphs: list[Graph] = [
            _view_graph(self._shm.buf, entry) for entry in handle.entries
        ]

    def close(self) -> None:
        """Drop the view graphs and unmap the segment (idempotent)."""
        self.graphs = []
        try:
            self._shm.close()
        except BufferError:
            # A view escaped the store (e.g. a process object that
            # outlived it), possibly only pinned by a reference cycle —
            # collect and retry once, then give up: the mapping stays
            # until the view dies, and the /dev/shm entry is governed
            # by the master's unlink either way, so nothing leaks.
            import gc

            gc.collect()
            try:
                self._shm.close()
            except BufferError:
                pass

    def __enter__(self) -> AttachedGraphStore:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


class SharedGraphStore:
    """Publish graphs' CSR arrays into one shared-memory segment.

    The master side of the zero-copy path: construction packs every
    graph's ``indptr``/``indices`` into a fresh segment and records a
    picklable :attr:`handle`; workers attach via
    ``handle.attach()``.  Use as a context manager (or call
    :meth:`close` in a ``finally``) — exit unlinks the segment, and a
    finalizer backstop unlinks it at garbage collection if the owner
    forgot, so no exception path leaks ``/dev/shm`` entries.
    """

    def __init__(self, graphs: Sequence[Graph]) -> None:
        self.graphs: list[Graph] = list(graphs)
        entries: list[GraphEntry] = []
        writes: list[tuple[int, np.ndarray]] = []
        offset = 0
        for graph in self.graphs:
            indptr = np.ascontiguousarray(graph.indptr)
            indices = np.ascontiguousarray(graph.indices)
            indptr_offset = _aligned(offset)
            offset = indptr_offset + indptr.nbytes
            indices_offset = _aligned(offset)
            offset = indices_offset + indices.nbytes
            writes.append((indptr_offset, indptr))
            writes.append((indices_offset, indices))
            entries.append(
                GraphEntry(
                    n=graph.n,
                    m=graph.m,
                    indptr_dtype=indptr.dtype.str,
                    indices_dtype=indices.dtype.str,
                    indptr_offset=indptr_offset,
                    indices_offset=indices_offset,
                )
            )
        nbytes = max(offset, 1)  # SharedMemory rejects size 0
        name = SEGMENT_PREFIX + secrets.token_hex(8)
        self._shm = shared_memory.SharedMemory(
            name=name, create=True, size=nbytes
        )
        self._closed = False
        # Arm the unlink backstop before the first write: a crash while
        # packing must not leak the freshly-created segment either.
        self._finalizer = weakref.finalize(self, _unlink_segment, name)
        buf = self._shm.buf
        for write_offset, array in writes:
            view = np.frombuffer(
                buf, dtype=array.dtype, count=array.size, offset=write_offset
            )
            view[:] = array
            del view  # views pin the mapping; release before any close
        self.handle = SharedGraphHandle(
            segment=name, entries=tuple(entries), nbytes=nbytes
        )
        _LIVE_STORES.add(self)

    def close(self) -> None:
        """Unlink the segment (idempotent; safe while workers attached).

        Attached workers keep their mappings — POSIX removes only the
        name — so in-flight jobs finish normally while the segment can
        no longer outlive the master.
        """
        if self._closed:
            return
        self._closed = True
        _LIVE_STORES.discard(self)
        self._finalizer.detach()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._shm.close()

    def __enter__(self) -> SharedGraphStore:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
