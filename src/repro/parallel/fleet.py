"""Master-side fleet sharding.

This is the dispatch target behind ``run_many_until_stable(...,
n_jobs=...)``: split a fleet of R independent replicas into contiguous
per-worker ranges, publish the distinct graphs once
(:class:`~repro.parallel.shared_graph.SharedGraphStore`), feed the
shards through a :class:`~repro.parallel.jobs.JobQueue`, and graft each
worker's final process state back onto the caller's original objects.

Determinism contract: every replica owns an independent coin stream
and the batched engines guarantee per-replica trajectories independent
of groupmates, so the results are **bitwise-identical to the serial
path for any worker count and any shard boundaries** — sharding is a
pure wall-clock knob.  The shard count equals the *requested*
``n_jobs`` (machine-independent); only the pool width is clamped to
the usable CPUs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.graphs.graph import Graph
from repro.parallel.jobs import GraphRegistry, JobQueue, ShardJob
from repro.parallel.pool import WorkerPool, resolve_n_jobs
from repro.parallel.shared_graph import SharedGraphStore

if TYPE_CHECKING:
    from repro.core.process import MISProcess
    from repro.sim.runner import RunResult


def shard_ranges(count: int, shards: int) -> list[tuple[int, int]]:
    """Split ``count`` items into at most ``shards`` contiguous ranges.

    Ranges are near-equal (sizes differ by at most one), cover
    ``[0, count)`` in order, and are never empty — fewer than ``shards``
    ranges come back when there are fewer items than shards.
    """
    if count <= 0:
        return []
    shards = max(1, min(shards, count))
    base, extra = divmod(count, shards)
    ranges: list[tuple[int, int]] = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def fleet_shards(n_jobs: int | str | None, pool: WorkerPool | None) -> int:
    """Shard count implied by an ``n_jobs`` spec and/or an explicit pool.

    An explicit ``n_jobs`` wins (unclamped — shard shapes are
    machine-independent); with only a pool given, one shard per worker.
    """
    if n_jobs is not None:
        return resolve_n_jobs(n_jobs, clamp=False)
    return pool.workers if pool is not None else 1


def adopt_state(target: MISProcess, source: MISProcess) -> None:
    """Graft a worker-final process's state onto the master's object.

    The caller keeps its object identity (references to the process
    stay valid); the whole ``__dict__`` is swapped — the process
    classes keep all state there (none defines ``__slots__``), and the
    unpickled source already references the master's own graph and ops
    through the swap tokens of :mod:`repro.parallel.jobs`.
    """
    if type(target) is not type(source):
        raise TypeError(
            f"cannot adopt {type(source).__name__} state into "
            f"{type(target).__name__}"
        )
    target.__dict__.clear()
    target.__dict__.update(source.__dict__)


def run_fleet_sharded(
    processes: Sequence[MISProcess],
    *,
    max_rounds: int,
    verify: bool,
    batch: str | int | None,
    engine: str,
    n_jobs: int | str | None,
    pool: WorkerPool | None = None,
) -> list[RunResult]:
    """Run a fleet sharded across worker processes.

    The parallel twin of :func:`~repro.sim.runner.run_many_until_stable`
    (which is the only intended caller): identical signature semantics,
    identical results, with replicas advanced in worker processes.  On
    return, every process in ``processes`` holds its post-run state
    exactly as the serial path would have left it.

    ``pool=None`` spins up a private pool of ``min(shards,
    resolve_n_jobs(n_jobs))`` workers and closes it before returning;
    passing a persistent pool amortizes worker startup across calls
    (the sweep path does).  The published graph store is unlinked on
    every exit path, including worker crashes.
    """
    processes = list(processes)
    shards = shard_ranges(len(processes), fleet_shards(n_jobs, pool))
    graphs: list[Graph] = []
    seen: set[int] = set()  # id()-dedup: Graph.__eq__ is O(m)
    for process in processes:
        if id(process.graph) not in seen:
            seen.add(id(process.graph))
            graphs.append(process.graph)
    registry = GraphRegistry(graphs)
    for process in processes:
        registry.register_ops(process.ops)
    own_pool = pool is None
    submitted: list[tuple[int, tuple[int, int]]] = []
    with SharedGraphStore(graphs) as store:
        try:
            if pool is None:
                pool = WorkerPool(
                    min(len(shards), resolve_n_jobs(n_jobs))
                )
            queue = JobQueue(pool)
            for lo, hi in shards:
                job_id = queue.submit(
                    ShardJob(
                        indices=(lo, hi),
                        payload=registry.dumps(processes[lo:hi]),
                        handle=store.handle,
                        max_rounds=max_rounds,
                        verify=verify,
                        batch=batch,
                        engine=engine,
                    )
                )
                submitted.append((job_id, (lo, hi)))
            outcomes = queue.wait_all()
        finally:
            if own_pool and pool is not None:
                pool.close()
    results: list[RunResult | None] = [None] * len(processes)
    for job_id, (lo, hi) in submitted:
        shard_results, shard_processes = registry.loads(
            outcomes[job_id].payload
        )
        for offset, final in enumerate(shard_processes):
            adopt_state(processes[lo + offset], final)
            results[lo + offset] = shard_results[offset]
    missing = [i for i, result in enumerate(results) if result is None]
    if missing:  # pragma: no cover - collect() already raises
        raise RuntimeError(f"shard results missing for replicas {missing}")
    return [result for result in results if result is not None]
