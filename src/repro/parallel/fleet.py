"""Master-side fleet sharding.

This is the dispatch target behind ``run_many_until_stable(...,
n_jobs=...)``: split a fleet of R independent replicas into contiguous
per-worker ranges, publish the distinct graphs once
(:class:`~repro.parallel.shared_graph.SharedGraphStore`), run the
shards under a self-healing
:class:`~repro.parallel.supervisor.SupervisedPool`, and graft each
worker's final process state back onto the caller's original objects.

Resilience contract (PR 9): a crashed worker is respawned and its
shard re-dispatched with bounded backoff; a shard past its deadline is
degraded to an in-process run; a poisoned result is quarantined and
retried; and with a checkpoint journal attached, every completed shard
is persisted *before* any later shard can fail, so an interrupted or
exhausted campaign resumes from its last completed shard.

Determinism contract: every replica owns an independent coin stream
and the batched engines guarantee per-replica trajectories independent
of groupmates, so the results are **bitwise-identical to the serial
path for any worker count, any shard boundaries, and any fault
schedule** — sharding stays a pure wall-clock knob even under chaos.
The shard count equals the *requested* ``n_jobs``
(machine-independent); only the pool width is clamped to the usable
CPUs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.graphs.graph import Graph
from repro.parallel.jobs import (
    GraphRegistry,
    JobQueue,
    ShardJob,
    ShardResult,
)
from repro.parallel.pool import WorkerPool, resolve_n_jobs
from repro.parallel.shared_graph import SharedGraphStore
from repro.parallel.supervisor import SupervisedPool
from repro.parallel.worker import run_shard

if TYPE_CHECKING:
    from repro.core.process import MISProcess
    from repro.sim.checkpoint import CheckpointView
    from repro.sim.runner import RunResult


def shard_ranges(count: int, shards: int) -> list[tuple[int, int]]:
    """Split ``count`` items into at most ``shards`` contiguous ranges.

    Ranges are near-equal (sizes differ by at most one), cover
    ``[0, count)`` in order, and are never empty — fewer than ``shards``
    ranges come back when there are fewer items than shards.
    """
    if count <= 0:
        return []
    shards = max(1, min(shards, count))
    base, extra = divmod(count, shards)
    ranges: list[tuple[int, int]] = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def fleet_shards(n_jobs: int | str | None, pool: Any | None) -> int:
    """Shard count implied by an ``n_jobs`` spec and/or an explicit pool.

    An explicit ``n_jobs`` wins (unclamped — shard shapes are
    machine-independent); with only a pool given, one shard per worker.
    """
    if n_jobs is not None:
        return resolve_n_jobs(n_jobs, clamp=False)
    return int(pool.workers) if pool is not None else 1


def shard_key(lo: int, hi: int) -> str:
    """Journal key of the ``[lo, hi)`` shard's checkpointed result."""
    return f"shard:{lo}:{hi}"


def adopt_state(target: MISProcess, source: MISProcess) -> None:
    """Graft a worker-final process's state onto the master's object.

    The caller keeps its object identity (references to the process
    stay valid); the whole ``__dict__`` is swapped — the process
    classes keep all state there (none defines ``__slots__``), and the
    unpickled source already references the master's own graph and ops
    through the swap tokens of :mod:`repro.parallel.jobs`.
    """
    if type(target) is not type(source):
        raise TypeError(
            f"cannot adopt {type(source).__name__} state into "
            f"{type(target).__name__}"
        )
    target.__dict__.clear()
    target.__dict__.update(source.__dict__)


def _distinct_graphs(processes: Sequence[MISProcess]) -> list[Graph]:
    graphs: list[Graph] = []
    seen: set[int] = set()  # id()-dedup: Graph.__eq__ is O(m)
    for process in processes:
        if id(process.graph) not in seen:
            seen.add(id(process.graph))
            graphs.append(process.graph)
    return graphs


def run_fleet_sharded(
    processes: Sequence[MISProcess],
    *,
    max_rounds: int,
    verify: bool,
    batch: str | int | None,
    engine: str,
    n_jobs: int | str | None,
    pool: SupervisedPool | WorkerPool | None = None,
    journal: "CheckpointView | None" = None,
) -> list[RunResult]:
    """Run a fleet sharded across supervised worker processes.

    The parallel twin of :func:`~repro.sim.runner.run_many_until_stable`
    (which is the only intended caller): identical signature semantics,
    identical results, with replicas advanced in worker processes.  On
    return, every process in ``processes`` holds its post-run state
    exactly as the serial path would have left it.

    ``pool=None`` spins up a private :class:`SupervisedPool` of
    ``min(shards, resolve_n_jobs(n_jobs))`` workers and closes it
    before returning; passing a persistent pool amortizes worker
    startup across calls (the sweep path does).  A legacy
    :class:`~repro.parallel.pool.WorkerPool` is still accepted and
    dispatches through the PR 8 fail-fast
    :class:`~repro.parallel.jobs.JobQueue` path.  The published graph
    store is unlinked on every exit path, including worker crashes and
    retry exhaustion.

    With a ``journal``, each completed shard is persisted under
    ``shard:{lo}:{hi}`` the moment it lands — before any later shard
    can fail — and shards already journaled are not re-dispatched; an
    interrupted campaign therefore resumes from its last completed
    shard with bitwise-identical results.
    """
    processes = list(processes)
    ranges = shard_ranges(len(processes), fleet_shards(n_jobs, pool))
    graphs = _distinct_graphs(processes)
    registry = GraphRegistry(graphs)
    for process in processes:
        registry.register_ops(process.ops)

    payloads: dict[tuple[int, int], bytes] = {}
    pending: list[tuple[int, int]] = []
    for lo, hi in ranges:
        restored = (
            journal.get_bytes(shard_key(lo, hi))
            if journal is not None
            else None
        )
        if restored is not None:
            payloads[(lo, hi)] = restored
        else:
            pending.append((lo, hi))

    own_pool = pool is None
    if pending:
        with SharedGraphStore(graphs) as store:
            try:
                if pool is None:
                    pool = SupervisedPool(
                        min(len(pending), resolve_n_jobs(n_jobs))
                    )
                jobs = [
                    ShardJob(
                        indices=(lo, hi),
                        payload=registry.dumps(processes[lo:hi]),
                        handle=store.handle,
                        max_rounds=max_rounds,
                        verify=verify,
                        batch=batch,
                        engine=engine,
                    )
                    for lo, hi in pending
                ]
                if isinstance(pool, SupervisedPool):
                    outcomes = _run_supervised(
                        pool, jobs, registry, journal
                    )
                else:
                    outcomes = _run_legacy(pool, jobs)
            finally:
                if own_pool and pool is not None:
                    pool.close()
        for key, result in outcomes.items():
            payloads[key] = result.payload
            # The supervised path journals incrementally via on_result;
            # the legacy path can only journal after the barrier.
            if journal is not None and not isinstance(pool, SupervisedPool):
                journal.put_bytes(shard_key(*key), result.payload)

    results: list[RunResult | None] = [None] * len(processes)
    for (lo, hi), payload in payloads.items():
        shard_results, shard_processes = registry.loads(payload)
        for offset, final in enumerate(shard_processes):
            adopt_state(processes[lo + offset], final)
            results[lo + offset] = shard_results[offset]
    missing = [i for i, result in enumerate(results) if result is None]
    if missing:  # pragma: no cover - dispatch already raises
        raise RuntimeError(f"shard results missing for replicas {missing}")
    return [result for result in results if result is not None]


def _run_supervised(
    pool: SupervisedPool,
    jobs: list[ShardJob],
    registry: GraphRegistry,
    journal: "CheckpointView | None",
) -> dict[tuple[int, int], ShardResult]:
    """Dispatch shard jobs under supervision.

    Wires the three master-side hooks: *validation* (a result must
    carry the right indices and a payload that unpickles to the right
    shapes — the poisoned-result quarantine), *degradation* (a
    deadline-killed shard re-runs in-process against the master's own
    registry), and *journaling* (each completed shard is persisted
    immediately, so partial progress survives a later
    ``ShardFailedError`` or interrupt).
    """

    def validate(job: ShardJob, result: ShardResult) -> bool:
        if tuple(result.indices) != tuple(job.indices):
            return False
        try:
            shard_results, shard_processes = registry.loads(result.payload)
        except Exception:
            return False
        size = job.indices[1] - job.indices[0]
        return len(shard_results) == size and len(shard_processes) == size

    def on_result(key: tuple[int, int], result: ShardResult) -> None:
        if journal is not None:
            journal.put_bytes(shard_key(*key), result.payload)

    return pool.run_jobs(
        jobs,
        local_runner=lambda job: run_shard(registry, job),
        validate=validate,
        on_result=on_result,
    )


def _run_legacy(
    pool: WorkerPool, jobs: list[ShardJob]
) -> dict[tuple[int, int], ShardResult]:
    """PR 8 fail-fast dispatch through a plain WorkerPool (no retry)."""
    queue = JobQueue(pool)
    submitted = [(queue.submit(job), tuple(job.indices)) for job in jobs]
    outcomes = queue.wait_all()
    return {
        (indices[0], indices[1]): outcomes[job_id]
        for job_id, indices in submitted
    }
