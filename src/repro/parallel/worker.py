"""Worker-process entry point.

Deliberately dumb, in the Ganeti-jqueue mold: a worker loops on the
task queue, runs each shard with the ordinary in-process engines, and
ships results back.  All policy — sharding, shared-memory lifecycle,
result writeback — lives with the master.

:func:`worker_main` is a module-level function taking only its queues
(no closure captures, no module-global mutation), as the repro-lint
``parallel-safety`` rule requires of pool entry points.
"""

from __future__ import annotations

import traceback
from typing import Any


def _run_shard(registry: Any, job: Any) -> Any:
    """Run one shard job against an attached registry.

    A separate function so every reference to the shard's processes —
    whose arrays view the shared mapping — dies on return; the worker
    can then unmap its cached store cleanly when the master publishes a
    new segment.
    """
    from repro.parallel.jobs import ShardResult
    from repro.sim.runner import run_many_until_stable

    processes = registry.loads(job.payload)
    shard_results = run_many_until_stable(
        processes,
        max_rounds=job.max_rounds,
        verify=job.verify,
        batch=job.batch,
        engine=job.engine,
        n_jobs=1,  # a worker never recurses into its own pool
    )
    return ShardResult(job.indices, registry.dumps((shard_results, processes)))


def worker_main(tasks: Any, results: Any) -> None:
    """Execute shard jobs from ``tasks`` until a ``None`` sentinel.

    The worker caches one attached graph store: consecutive jobs
    against the same published segment — every shard of a fleet, every
    point of a sweep — share a single mmap.  Exceptions are caught and
    shipped back as ``(job_id, "error", traceback)`` so the worker
    survives bad jobs; only a hard death (signal, ``os._exit``) kills
    it, which the master's liveness polling detects.
    """
    from repro.parallel.jobs import GraphRegistry

    store = None
    registry = None
    while True:
        task = tasks.get()
        if task is None:
            break
        job_id, job = task
        try:
            if store is None or store.handle.segment != job.handle.segment:
                registry = None  # release view refs before unmapping
                if store is not None:
                    store.close()
                store = job.handle.attach()
                registry = GraphRegistry(store.graphs)
            results.put((job_id, "ok", _run_shard(registry, job)))
        except Exception:
            results.put((job_id, "error", traceback.format_exc()))
    registry = None
    if store is not None:
        store.close()
