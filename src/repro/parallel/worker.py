"""Worker-process entry point.

Deliberately dumb, in the Ganeti-jqueue mold: a worker loops on the
task queue, runs each shard with the ordinary in-process engines, and
ships results back.  All policy — sharding, shared-memory lifecycle,
result writeback, retry/deadline supervision — lives with the master.

:func:`worker_main` is a module-level function taking only its queues
and spawn-time configuration (no closure captures, no module-global
mutation), as the repro-lint ``parallel-safety`` rule requires of pool
entry points.  The optional :class:`~repro.parallel.chaos.ChaosPolicy`
is that configuration's fault-injection hook: consulted once per job,
it can kill the worker before it reports, make it hang or start slow,
or poison its result — each a deterministic function of
``(shard, attempt)`` so the supervisor's recovery paths are
reproducibly testable.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.parallel.chaos import ChaosPolicy


def run_shard(registry: Any, job: Any) -> Any:
    """Run one shard job against an attached (or master) registry.

    A separate function so every reference to the shard's processes —
    whose arrays view the shared mapping — dies on return; the worker
    can then unmap its cached store cleanly when the master publishes a
    new segment.  The supervisor's deadline-degradation path calls this
    too, against the *master's* registry: the payload round-trips
    through the same pickler either way, so a degraded shard is
    bitwise-identical to a worker-run one.
    """
    from repro.parallel.jobs import ShardResult
    from repro.sim.runner import run_many_until_stable

    processes = registry.loads(job.payload)
    shard_results = run_many_until_stable(
        processes,
        max_rounds=job.max_rounds,
        verify=job.verify,
        batch=job.batch,
        engine=job.engine,
        n_jobs=1,  # a worker never recurses into its own pool
    )
    return ShardResult(job.indices, registry.dumps((shard_results, processes)))


def worker_main(
    tasks: Any, results: Any, chaos: "ChaosPolicy | None" = None
) -> None:
    """Execute shard jobs from ``tasks`` until a ``None`` sentinel.

    The worker caches one attached graph store: consecutive jobs
    against the same published segment — every shard of a fleet, every
    point of a sweep — share a single mmap.  Exceptions are caught and
    shipped back as ``(job_id, "error", traceback)`` so the worker
    survives bad jobs; only a hard death (signal, ``os._exit``) kills
    it, which the master's liveness polling detects.

    With a ``chaos`` policy, each job first consults
    ``chaos.fault_for(job.indices, job.attempt)``: ``"kill"`` exits
    the process with :data:`~repro.parallel.chaos.CHAOS_KILL_EXIT`
    before touching the job, ``"hang"``/``"slow"`` sleep before
    running (the former long enough for a supervisor deadline to
    fire), and ``"poison"`` reports an unpicklable payload instead of
    running — exercising the master's quarantine-and-retry path.
    """
    from repro.parallel.chaos import CHAOS_KILL_EXIT, POISON_PAYLOAD
    from repro.parallel.jobs import GraphRegistry, ShardResult

    store = None
    registry = None
    while True:
        task = tasks.get()
        if task is None:
            break
        job_id, job = task
        if chaos is not None:
            fault = chaos.fault_for(
                tuple(job.indices), getattr(job, "attempt", 0)
            )
            if fault == "kill":
                # Flush buffered results first: dying while this
                # worker's queue feeder holds the shared write lock
                # would deadlock every sibling's put().  The chaos
                # kill semantic is "die before touching *this* job",
                # not "corrupt transport of the previous one".
                results.close()
                results.join_thread()
                os._exit(CHAOS_KILL_EXIT)
            elif fault == "hang":
                time.sleep(chaos.hang_seconds)
            elif fault == "slow":
                time.sleep(chaos.slow_seconds)
            elif fault == "poison":
                results.put(
                    (job_id, "ok", ShardResult(job.indices, POISON_PAYLOAD))
                )
                continue
        try:
            if store is None or store.handle.segment != job.handle.segment:
                registry = None  # release view refs before unmapping
                if store is not None:
                    store.close()
                store = job.handle.attach()
                registry = GraphRegistry(store.graphs)
            results.put((job_id, "ok", run_shard(registry, job)))
        except Exception:
            results.put((job_id, "error", traceback.format_exc()))
    registry = None
    if store is not None:
        store.close()
