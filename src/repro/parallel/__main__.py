"""Self-check CLI for the parallel execution substrate.

Usage::

    python -m repro.parallel --doctor
    python -m repro.parallel --chaos-smoke [--workers 2 4] [--replicas R]

``--doctor`` verifies the machinery on *this* machine: shared-memory
hygiene (no leaked ``repro-graphs-*`` segments before or after), worker
spawn, crash detection, respawn, retry, and bitwise equality of a
supervised chaos run against the serial path.  Exit 0 = healthy.

``--chaos-smoke`` is the CI resilience gate: for each worker count it
runs one fleet under a deterministic fault plan that exercises every
recovery path — a chaos-killed worker (respawn + retry), a hang past
the per-shard deadline (straggler kill + in-process degradation), and
a poisoned result (quarantine + retry) — and requires the results to
be bitwise-identical to the fault-free serial reference, with no
leaked segments and no zombie workers.  It finishes with the service
drill: a checkpointed :class:`~repro.dynamic.service.MISService` is
chaos-killed (and journal-torn) mid-stream and must resume to the
bitwise-identical trajectory of an uninterrupted run.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

import numpy as np


def _fleet(replicas: int, n: int = 48, p: float = 0.1) -> list:
    """A deterministic TwoStateMIS fleet on one shared G(n, p) graph."""
    from repro.core.two_state import TwoStateMIS
    from repro.graphs.random_graphs import gnp_random_graph

    graph = gnp_random_graph(n, p, rng=11)
    return [TwoStateMIS(graph, coins=1000 + i) for i in range(replicas)]


def _reference(replicas: int, max_rounds: int) -> list:
    from repro.sim.runner import run_many_until_stable

    return run_many_until_stable(_fleet(replicas), max_rounds=max_rounds)


def _identical(ref: list, got: list) -> bool:
    if len(ref) != len(got):
        return False
    for a, b in zip(ref, got):
        if (
            a.stabilized != b.stabilized
            or a.stabilization_round != b.stabilization_round
            or a.rounds_executed != b.rounds_executed
        ):
            return False
        if (a.mis is None) != (b.mis is None):
            return False
        if a.mis is not None and not np.array_equal(a.mis, b.mis):
            return False
    return True


def _check(label: str, ok: bool, detail: str = "") -> bool:
    status = "ok" if ok else "FAIL"
    suffix = f"  ({detail})" if detail else ""
    print(f"  [{status:>4}] {label}{suffix}")
    return ok


def doctor() -> int:
    """Run the machinery self-check; returns a process exit code."""
    from repro.parallel.chaos import CHAOS_KILL_EXIT, ChaosPolicy
    from repro.parallel.fleet import shard_ranges
    from repro.parallel.shared_graph import leaked_segments
    from repro.parallel.supervisor import SupervisedPool
    from repro.sim.runner import run_many_until_stable

    print("repro.parallel doctor")
    healthy = _check(
        "no pre-existing leaked segments",
        leaked_segments() == [],
        ", ".join(leaked_segments()),
    )

    replicas, max_rounds = 16, 400
    ref = _reference(replicas, max_rounds)

    with SupervisedPool(2) as pool:
        healthy &= _check(
            "worker spawn", pool.workers == 2, f"{pool.workers} workers"
        )
        results = run_many_until_stable(
            _fleet(replicas), max_rounds=max_rounds, pool=pool
        )
        healthy &= _check(
            "clean supervised run matches serial", _identical(ref, results)
        )

    # Crash/respawn drill: kill attempt 0 of every shard, then watch
    # the supervisor respawn the workers and retry the shards.
    ranges = shard_ranges(replicas, 2)
    plan = {(tuple(r), 0): "kill" for r in ranges}
    with SupervisedPool(2, chaos=ChaosPolicy.scripted(plan)) as pool:
        results = run_many_until_stable(
            _fleet(replicas), max_rounds=max_rounds, pool=pool
        )
        kinds = [event.kind for event in pool.events]
        healthy &= _check(
            "crash detection + respawn",
            pool.respawns >= len(ranges) and "respawn" in kinds,
            f"{pool.respawns} respawns, exit code {CHAOS_KILL_EXIT}",
        )
        healthy &= _check("shard retry after crash", "retry" in kinds)
        healthy &= _check(
            "post-crash results match serial", _identical(ref, results)
        )
        zombies = pool.close()
        healthy &= _check("shutdown leaves no zombies", zombies == [])

    healthy &= _check(
        "no leaked segments after runs",
        leaked_segments() == [],
        ", ".join(leaked_segments()),
    )
    print("healthy" if healthy else "UNHEALTHY")
    return 0 if healthy else 1


def _service_chaos_smoke() -> bool:
    """Kill a checkpointed MISService mid-stream; resume must be bitwise.

    The service analogue of the worker drills: a scripted
    ``ServiceChaosPolicy`` kills the daemon at one offset and tears the
    journal tail at another, and the restarted incarnations must finish
    with the state vector, per-event records, round counter, and MIS of
    an uninterrupted run — exactly.
    """
    import os
    import tempfile

    from repro.dynamic import MISService, make_stream, run_with_chaos
    from repro.graphs.random_graphs import gnp_random_graph
    from repro.parallel.chaos import ServiceChaosPolicy

    n, events = 192, 48
    graph = gnp_random_graph(n, 3.0 / n, rng=11)
    stream = make_stream("uniform", n, seed=7)
    ref = MISService(graph, stream, seed=5)
    ref.run(events)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "service.ckpt")
        chaos = ServiceChaosPolicy.scripted(
            {(events // 3, 0): "kill", (2 * events // 3, 0): "poison"}
        )

        def make_service() -> MISService:
            return MISService(
                graph, stream, seed=5, checkpoint=path, checkpoint_every=4
            )

        service, restarts = run_with_chaos(make_service, events, chaos)
        ok = (
            restarts == 2
            and np.array_equal(
                ref._state_arrays()[0], service._state_arrays()[0]
            )
            and [r.to_dict() for r in ref.records]
            == [r.to_dict() for r in service.records]
            and ref.proc.round == service.proc.round
            and np.array_equal(ref.mis(), service.mis())
        )
        service.close()
    print(
        f"  service: {'bitwise-equal' if ok else 'MISMATCH'} after "
        f"{restarts} kill/poison restarts over {events} events"
    )
    return ok


def chaos_smoke(
    worker_counts: list[int], replicas: int, deadline: float
) -> int:
    """Run the seeded kill/hang/poison matrix; returns an exit code."""
    from repro.parallel.chaos import ChaosPolicy
    from repro.parallel.fleet import shard_ranges
    from repro.parallel.retry import RetryPolicy
    from repro.parallel.shared_graph import leaked_segments
    from repro.parallel.supervisor import (
        SupervisedPool,
        iter_chaos_fault_plan,
    )
    from repro.sim.runner import run_many_until_stable

    max_rounds = 600
    print(
        f"chaos smoke: {replicas} replicas, workers {worker_counts}, "
        f"deadline {deadline}s"
    )
    ref = _reference(replicas, max_rounds)
    failed = False
    for workers in worker_counts:
        ranges = shard_ranges(replicas, workers)
        # One fault per shard, cycling through every recovery path.
        faults = ["kill", "hang", "poison"] * (len(ranges) // 3 + 1)
        chaos = ChaosPolicy.scripted(
            iter_chaos_fault_plan(ranges, faults[: len(ranges)]),
            hang_seconds=max(10 * deadline, 5.0),
            seed=workers,
        )
        start = time.time()
        with SupervisedPool(
            workers,
            chaos=chaos,
            deadline=deadline,
            retry=RetryPolicy(backoff_base=0.01),
        ) as pool:
            results = run_many_until_stable(
                _fleet(replicas),
                max_rounds=max_rounds,
                n_jobs=workers,
                pool=pool,
            )
            kinds = {event.kind for event in pool.events}
            zombies = pool.close()
        ok = _identical(ref, results)
        elapsed = time.time() - start
        print(
            f"  workers={workers}: {'bitwise-equal' if ok else 'MISMATCH'} "
            f"in {elapsed:.1f}s; events {sorted(kinds)}; "
            f"zombies {zombies}"
        )
        failed |= not ok
        failed |= bool(zombies)
        # Every recovery path the fault plan exercises must have fired.
        recovery = {
            "kill": ("respawn", "retry"),
            "hang": ("deadline-kill", "degrade"),
            "poison": ("quarantine", "retry"),
        }
        required = {
            kind
            for fault in faults[: len(ranges)]
            for kind in recovery[fault]
        }
        for kind in sorted(required):
            if kind not in kinds:
                print(f"  MISSING recovery path: {kind}")
                failed = True
    failed |= not _service_chaos_smoke()
    leaked = leaked_segments()
    if leaked:
        print(f"  LEAKED segments: {leaked}")
        failed = True
    print("chaos smoke: " + ("FAIL" if failed else "PASS"))
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.parallel")
    parser.add_argument(
        "--doctor", action="store_true",
        help="self-check workers, supervision, and shm hygiene",
    )
    parser.add_argument(
        "--chaos-smoke", action="store_true",
        help="run the seeded kill/hang/poison chaos matrix",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[2, 4], metavar="W",
        help="worker counts for --chaos-smoke (default: 2 4)",
    )
    parser.add_argument(
        "--replicas", type=int, default=96, metavar="R",
        help="fleet size for --chaos-smoke (default: 96)",
    )
    parser.add_argument(
        "--deadline", type=float, default=1.0, metavar="S",
        help="per-shard deadline for --chaos-smoke (default: 1.0s)",
    )
    args = parser.parse_args(argv)
    if not args.doctor and not args.chaos_smoke:
        parser.error("pass --doctor and/or --chaos-smoke")

    from repro.parallel.pool import install_signal_backstop

    install_signal_backstop()
    code = 0
    if args.doctor:
        code = max(code, doctor())
    if args.chaos_smoke:
        code = max(
            code, chaos_smoke(args.workers, args.replicas, args.deadline)
        )
    return code


if __name__ == "__main__":
    sys.exit(main())
