"""Job specs and the graph-swapping pickler.

Workers receive *small* payloads: a shard's process objects with every
reference to a published graph — the :class:`~repro.graphs.graph.Graph`
itself, its CSR arrays, its cached degree array, and any
:class:`~repro.core.neighbor_ops.NeighborOps` bound to it — replaced by
a token (``pickle`` persistent IDs).  The receiving side resolves
tokens against its own :class:`GraphRegistry`: a worker's registry is
built over the shared-memory view graphs, the master's over the
original objects, so a round trip master → worker → master hands the
caller back processes that reference the caller's *own* graph and ops
instances.  Adjacency structure never crosses a queue; what does cross
is O(shard size × n) bytes of process state.

:class:`ShardJob` / :class:`ShardResult` are the wire format, and
:class:`JobQueue` is the master-side bookkeeping that feeds them
through a :class:`~repro.parallel.pool.WorkerPool` — sweeps, fault
campaigns and experiment workloads all reduce to submitting shard jobs,
which is what replaces the legacy factory-pickling path.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.core import neighbor_ops as _nops
from repro.graphs.graph import Graph
from repro.parallel.shared_graph import SharedGraphHandle

if TYPE_CHECKING:
    from repro.parallel.pool import WorkerPool

#: NeighborOps classes eligible for token swapping (rebuildable from a
#: graph alone).  Instances of other subclasses pickle by value.
_OPS_CLASSES: dict[str, type[_nops.NeighborOps]] = {
    cls.__name__: cls
    for cls in (
        _nops.SparseNeighborOps,
        _nops.DenseNeighborOps,
        _nops.BitsetNeighborOps,
        _nops.AdjListNeighborOps,
    )
}

#: Persistent-ID token: ("graph", i) | ("csr", i, which) |
#: ("degrees", i) | ("ops", i, clsname).
_Token = tuple[Any, ...]


class _SwapPickler(pickle.Pickler):
    """Pickler that swaps registered graph-adjacent objects for tokens."""

    def __init__(self, file: io.BytesIO, ids: dict[int, _Token]) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._ids = ids

    def persistent_id(self, obj: Any) -> _Token | None:
        token = self._ids.get(id(obj))
        if token is not None:
            return token
        if isinstance(obj, _nops.NeighborOps):
            clsname = type(obj).__name__
            if _OPS_CLASSES.get(clsname) is type(obj):
                slot = self._ids.get(id(obj.graph))
                if slot is not None and slot[0] == "graph":
                    return ("ops", slot[1], clsname)
        return None


class _SwapUnpickler(pickle.Unpickler):
    """Unpickler resolving swap tokens through a :class:`GraphRegistry`."""

    def __init__(self, file: io.BytesIO, registry: "GraphRegistry") -> None:
        super().__init__(file)
        self._registry = registry

    def persistent_load(self, pid: _Token) -> Any:
        return self._registry.resolve(pid)


class GraphRegistry:
    """Token table over a concrete list of graphs (one per endpoint).

    The master builds one over the fleet's original graphs, each worker
    over its attached shared-memory views — the graph at index ``i`` is
    the *same published graph* on both sides, which is what makes the
    token scheme a no-copy identity map.  NeighborOps resolve through a
    per-``(graph, class)`` cache, so every process of a shard that
    shared an ops instance (or a graph) before the trip shares one
    after it too.
    """

    def __init__(self, graphs: Sequence[Graph]) -> None:
        self.graphs: list[Graph] = list(graphs)
        self._ids: dict[int, _Token] = {}
        for i, graph in enumerate(self.graphs):
            self._ids[id(graph)] = ("graph", i)
            self._ids[id(graph.indptr)] = ("csr", i, "indptr")
            self._ids[id(graph.indices)] = ("csr", i, "indices")
            self._ids[id(graph.degrees())] = ("degrees", i)
        self._ops: dict[tuple[int, str], _nops.NeighborOps] = {}

    def index_of(self, graph: Graph) -> int | None:
        """Registry index of ``graph`` (by identity), or ``None``."""
        slot = self._ids.get(id(graph))
        if slot is not None and slot[0] == "graph":
            return int(slot[1])
        return None

    def register_ops(self, ops: _nops.NeighborOps) -> None:
        """Memoize an existing ops instance under its would-be token.

        The master registers each process's ops before dumping a shard,
        so results coming back resolve to the *original* instances
        instead of fresh rebuilds.
        """
        clsname = type(ops).__name__
        if _OPS_CLASSES.get(clsname) is not type(ops):
            return
        slot = self._ids.get(id(ops.graph))
        if slot is not None and slot[0] == "graph":
            self._ops.setdefault((int(slot[1]), clsname), ops)

    def resolve(self, pid: _Token) -> Any:
        """Materialize the object a swap token stands for."""
        kind = pid[0]
        if kind == "graph":
            return self.graphs[pid[1]]
        if kind == "csr":
            graph = self.graphs[pid[1]]
            return graph.indptr if pid[2] == "indptr" else graph.indices
        if kind == "degrees":
            return self.graphs[pid[1]].degrees()
        if kind == "ops":
            key = (int(pid[1]), str(pid[2]))
            ops = self._ops.get(key)
            if ops is None:
                ops = _OPS_CLASSES[key[1]](self.graphs[key[0]])
                self._ops[key] = ops
            return ops
        raise pickle.UnpicklingError(f"unknown swap token {pid!r}")

    def dumps(self, obj: Any) -> bytes:
        """Pickle ``obj`` with registered objects swapped for tokens."""
        buffer = io.BytesIO()
        _SwapPickler(buffer, self._ids).dump(obj)
        return buffer.getvalue()

    def loads(self, data: bytes) -> Any:
        """Unpickle swap-pickled bytes, resolving tokens locally."""
        return _SwapUnpickler(io.BytesIO(data), self).load()


@dataclass
class ShardJob:
    """One unit of worker work: run a slab of replicas to stabilization.

    ``payload`` is a swap-pickled ``list[MISProcess]`` (the shard's
    replicas); ``handle`` locates the published graphs the tokens
    resolve against.  Everything else mirrors the
    :func:`~repro.sim.runner.run_many_until_stable` parameters the
    worker forwards verbatim.
    """

    indices: tuple[int, int]
    payload: bytes
    handle: SharedGraphHandle
    max_rounds: int
    verify: bool
    batch: str | int | None
    engine: str
    #: Supervision bookkeeping: which dispatch attempt this is (the
    #: SupervisedPool bumps it on every re-dispatch; the chaos policy
    #: keys faults on it).  The payload never changes across attempts.
    attempt: int = 0


@dataclass
class ShardResult:
    """A finished shard: swap-pickled ``(results, processes)``."""

    indices: tuple[int, int]
    payload: bytes


class JobQueue:
    """Master-side bookkeeping of in-flight shard jobs on one pool.

    Thin by design (the Ganeti-jqueue split): the queue owns *which*
    jobs are outstanding, the pool owns the transport, and the workers
    stay dumb executors.  One queue can feed many submission rounds —
    a whole sweep reuses a single queue over a single persistent pool.
    """

    def __init__(self, pool: "WorkerPool") -> None:
        self._pool = pool
        self._pending: set[int] = set()

    @property
    def pool(self) -> "WorkerPool":
        """The pool this queue submits to."""
        return self._pool

    def submit(self, job: ShardJob) -> int:
        """Enqueue a shard job; returns its id."""
        job_id = self._pool.submit(job)
        self._pending.add(job_id)
        return job_id

    def wait_all(self) -> dict[int, ShardResult]:
        """Block until every pending job finished; results by job id.

        Raises :class:`~repro.parallel.pool.WorkerCrashError` if a
        worker dies first, and re-raises worker-side exceptions.
        """
        pending = self._pending
        self._pending = set()
        return self._pool.collect(pending)
