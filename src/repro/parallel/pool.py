"""Persistent worker pool: the master side of the master/worker split.

Deliberately *not* a ``concurrent.futures`` pool:

* workers are long-lived — a published graph store amortizes over every
  shard of every job of a whole sweep, instead of re-shipping state per
  task;
* the task payloads are bytes produced by the swap pickler of
  :mod:`repro.parallel.jobs` (a stock pool's pickler cannot token-swap
  graph references);
* a worker that dies mid-job (segfault, OOM kill, ``os._exit``) is
  detected by liveness polling and surfaced as
  :class:`WorkerCrashError` instead of hanging the master — the
  failure mode that makes the shared-memory cleanup guarantees
  testable.

:func:`resolve_n_jobs` is the single interpretation point for the
``n_jobs`` knob that :func:`~repro.sim.runner.run_many_until_stable`
and the Monte-Carlo layer expose.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import queue as queue_mod
import signal
import warnings
import weakref
from types import TracebackType
from typing import Any, Iterable

from repro.parallel.jobs import ShardJob, ShardResult
from repro.parallel.worker import worker_main

#: Seconds between liveness checks while awaiting results.
_POLL_INTERVAL = 0.1
#: Seconds to wait for a worker to honor its stop sentinel.
_JOIN_TIMEOUT = 5.0

#: Prefix of every worker process name — filterable in ``ps`` output
#: and ``multiprocessing.active_children()`` (the doctor CLI and the
#: interrupt-hygiene regression tests rely on it).
WORKER_NAME_PREFIX = "repro-worker-"

#: Every open pool (WorkerPool and SupervisedPool alike) registers
#: here so the atexit/SIGTERM backstop can close stragglers — the
#: Ctrl-C hygiene contract: no teardown path may strand workers or
#: queues, even when the owner never reaches its ``finally``.
_LIVE_POOLS: "weakref.WeakSet[Any]" = weakref.WeakSet()


class WorkerCrashError(RuntimeError):
    """A worker died without returning its job's result."""


def shutdown_processes(
    procs: Iterable[Any], join_timeout: float = _JOIN_TIMEOUT
) -> list[Any]:
    """Stop processes with escalation: join → terminate → kill.

    Each stage waits ``join_timeout`` seconds before escalating; the
    returned list holds processes that out-lived even ``kill()`` (on
    Linux effectively only unreapable zombies stuck in the kernel) —
    callers report them instead of silently leaking.
    """
    procs = list(procs)
    for proc in procs:
        proc.join(timeout=join_timeout)
    survivors = [p for p in procs if p.is_alive()]
    for proc in survivors:
        proc.terminate()
    for proc in survivors:
        proc.join(timeout=join_timeout)
    survivors = [p for p in survivors if p.is_alive()]
    for proc in survivors:
        proc.kill()
    for proc in survivors:
        proc.join(timeout=1.0)
    return [p for p in survivors if p.is_alive()]


def _report_zombies(zombies: list[Any]) -> list[int]:
    """Warn about workers that survived the full escalation ladder."""
    pids = [p.pid for p in zombies if p.pid is not None]
    if zombies:
        warnings.warn(
            f"{len(zombies)} worker(s) out-lived the shutdown "
            f"escalation (join -> terminate -> kill); pids {pids}",
            RuntimeWarning,
            stacklevel=3,
        )
    return pids


def _emergency_cleanup() -> None:
    """Close every live pool and unlink every live graph store.

    The atexit/SIGTERM backstop behind the Ctrl-C hygiene guarantees:
    an interpreter going down must not strand worker processes (their
    queues' feeder threads can deadlock exit) or ``/dev/shm``
    segments.  Idempotent — pools and stores de-register on close.
    """
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
    from repro.parallel.shared_graph import unlink_all_stores

    unlink_all_stores()


atexit.register(_emergency_cleanup)


def install_signal_backstop(
    signals: Iterable[int] = (signal.SIGTERM,),
) -> None:
    """Chain pool/segment cleanup in front of fatal-signal handlers.

    A SIGTERM'd campaign (batch scheduler preemption, ``timeout(1)``)
    never runs ``atexit``; this installs a handler that closes live
    pools, unlinks live shared-memory stores, restores the previous
    handler, and re-raises the signal so the process still dies with
    the expected status.  Idempotent; entry-point CLIs install it.
    """
    for sig in signals:
        previous = signal.getsignal(sig)
        if getattr(previous, "_repro_backstop", False):
            continue

        def _handler(
            signum: int, frame: Any, _previous: Any = previous
        ) -> None:
            _emergency_cleanup()
            restore = (
                _previous
                if callable(_previous)
                or _previous in (signal.SIG_DFL, signal.SIG_IGN)
                else signal.SIG_DFL
            )
            signal.signal(signum, restore)
            signal.raise_signal(signum)

        setattr(_handler, "_repro_backstop", True)
        signal.signal(sig, _handler)


def cpu_count() -> int:
    """Usable CPU count (scheduler affinity when the OS exposes it)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def resolve_n_jobs(n_jobs: int | str | None, clamp: bool = True) -> int:
    """Resolve an ``n_jobs`` spec to a positive integer.

    ``None`` means 1 (serial); ``"auto"`` means the usable CPU count;
    a positive int is taken literally.  With ``clamp`` (the default —
    used for *pool widths*), explicit requests are clamped to the CPU
    count, since extra workers only add scheduling overhead.
    ``clamp=False`` returns the request verbatim — used for *shard
    counts*, which are machine-independent job shapes (they never
    affect results, which are bitwise-identical for any sharding, but
    keeping them deterministic keeps job logs comparable).
    """
    if n_jobs is None:
        return 1
    if isinstance(n_jobs, str):
        if n_jobs != "auto":
            raise ValueError(
                f"n_jobs must be a positive int, 'auto', or None; "
                f"got {n_jobs!r}"
            )
        return cpu_count()
    if isinstance(n_jobs, bool) or not isinstance(n_jobs, int) or n_jobs < 1:
        raise ValueError(
            f"n_jobs must be a positive int, 'auto', or None; got {n_jobs!r}"
        )
    return min(int(n_jobs), cpu_count()) if clamp else int(n_jobs)


class WorkerPool:
    """A fixed-width pool of persistent worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes, taken verbatim (callers clamp via
        :func:`resolve_n_jobs`; tests deliberately oversubscribe).
    start_method:
        ``multiprocessing`` start method; default is ``"fork"`` where
        available (cheap, inherits imports) and ``"spawn"`` elsewhere.

    Use as a context manager, or call :meth:`close` in a ``finally`` —
    workers are daemonic, so even a crashed master cannot strand them,
    but an explicit close is what drains the queues deterministically.
    """

    def __init__(self, workers: int, start_method: str | None = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        ctx = mp.get_context(start_method)
        self._tasks: Any = ctx.Queue()
        self._results: Any = ctx.Queue()
        self._next_id = 0
        self._closed = False
        self._procs = [
            ctx.Process(
                target=worker_main,
                args=(self._tasks, self._results),
                daemon=True,
                name=f"{WORKER_NAME_PREFIX}{i}",
            )
            for i in range(workers)
        ]
        for proc in self._procs:
            proc.start()
        _LIVE_POOLS.add(self)

    @property
    def workers(self) -> int:
        """The pool width."""
        return len(self._procs)

    def submit(self, job: ShardJob) -> int:
        """Enqueue one job; returns its id (FIFO among idle workers)."""
        if self._closed:
            raise RuntimeError("cannot submit to a closed WorkerPool")
        job_id = self._next_id
        self._next_id += 1
        self._tasks.put((job_id, job))
        return job_id

    def collect(self, job_ids: Iterable[int]) -> dict[int, ShardResult]:
        """Await the given jobs; returns ``{job id: ShardResult}``.

        Raises
        ------
        WorkerCrashError
            If a worker process dies while results are outstanding (a
            job's execution can then never complete — surviving workers
            keep draining the task queue, but the in-flight job died
            with its worker).
        RuntimeError
            If a worker reports a Python-level exception; the worker
            itself survives and keeps serving (the traceback is
            embedded in the message).
        """
        pending = set(job_ids)
        out: dict[int, ShardResult] = {}
        while pending:
            try:
                job_id, status, value = self._results.get(
                    timeout=_POLL_INTERVAL
                )
            except queue_mod.Empty:
                dead = [
                    proc.exitcode
                    for proc in self._procs
                    if proc.exitcode not in (None, 0)
                ]
                if dead:
                    raise WorkerCrashError(
                        f"{len(dead)} worker(s) died (exit codes "
                        f"{sorted(set(dead))}) with {len(pending)} "
                        f"job(s) outstanding"
                    )
                continue
            if job_id not in pending:
                continue  # stale result from an abandoned batch
            pending.discard(job_id)
            if status == "error":
                raise RuntimeError(
                    f"worker job {job_id} raised:\n{value}"
                )
            out[job_id] = value
        return out

    def close(self) -> list[int]:
        """Stop the workers and release the queues (idempotent).

        Live workers get a stop sentinel and a grace period, then the
        full escalation ladder (join → terminate → kill).  Workers
        that survive even ``kill()`` are reported with a
        :class:`RuntimeWarning` and returned as a pid list instead of
        being silently left as zombies; a clean shutdown returns
        ``[]``.
        """
        if self._closed:
            return []
        self._closed = True
        _LIVE_POOLS.discard(self)
        for _ in self._procs:
            try:
                self._tasks.put(None)
            except (ValueError, OSError):  # pragma: no cover - queue gone
                break
        zombies = _report_zombies(shutdown_processes(self._procs))
        for q in (self._tasks, self._results):
            q.close()
            # Unsent buffered items (e.g. after a crash) must not block
            # interpreter exit on the queue's feeder thread.
            q.cancel_join_thread()
        return zombies

    def __enter__(self) -> WorkerPool:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
