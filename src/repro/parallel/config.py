"""Process-wide default parallelism and supervision.

A tiny settings shim so entry points (the experiments CLI's ``--jobs``
flag, scripts) can install a default ``n_jobs`` that every fleet
dispatch picks up — fault campaigns and experiments ride
:func:`~repro.sim.runner.run_many_until_stable`, so one installed
default parallelizes them all without threading a parameter through
every call site.  Explicit ``n_jobs=`` arguments always win; worker
processes never consult the default (they pin ``n_jobs=1``), so a
forked worker cannot recurse into a pool of its own.

The same shim carries :class:`SupervisionDefaults` — retry policy,
per-shard deadline, and chaos injection — so the chaos smoke harness
and the CLI can arm every internally-constructed
:class:`~repro.parallel.supervisor.SupervisedPool` (the ones
``run_many_until_stable`` and the sweep build themselves) without new
parameters on every simulation entry point.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from repro.parallel.chaos import ChaosPolicy
    from repro.parallel.retry import RetryPolicy

_default_n_jobs: int | str | None = None


@dataclass(frozen=True)
class SupervisionDefaults:
    """Process-wide defaults a SupervisedPool consults for unset args."""

    retry: "RetryPolicy | None" = None
    deadline: float | None = None
    chaos: "ChaosPolicy | None" = None


_default_supervision = SupervisionDefaults()


def get_default_supervision() -> SupervisionDefaults:
    """The installed supervision defaults (all-``None`` initially)."""
    return _default_supervision


def set_default_supervision(
    retry: "RetryPolicy | None" = None,
    deadline: float | None = None,
    chaos: "ChaosPolicy | None" = None,
) -> None:
    """Install process-wide supervision defaults.

    Every default left ``None`` means "pool decides": the stock
    :class:`~repro.parallel.retry.RetryPolicy`, no deadline, no chaos.
    Explicit ``SupervisedPool(...)`` arguments always win.
    """
    global _default_supervision
    if deadline is not None and deadline <= 0:
        raise ValueError(f"deadline must be > 0 seconds, got {deadline}")
    _default_supervision = SupervisionDefaults(
        retry=retry, deadline=deadline, chaos=chaos
    )


@contextmanager
def default_supervision(
    retry: "RetryPolicy | None" = None,
    deadline: float | None = None,
    chaos: "ChaosPolicy | None" = None,
) -> Iterator[None]:
    """Scoped :func:`set_default_supervision` (restores on exit)."""
    global _default_supervision
    previous = _default_supervision
    set_default_supervision(retry=retry, deadline=deadline, chaos=chaos)
    try:
        yield
    finally:
        _default_supervision = previous


def get_default_n_jobs() -> int | str | None:
    """The installed process-wide default (``None`` = serial)."""
    return _default_n_jobs


def set_default_n_jobs(n_jobs: int | str | None) -> None:
    """Install a process-wide default ``n_jobs`` spec.

    Accepts what :func:`~repro.parallel.pool.resolve_n_jobs` accepts
    (validated eagerly); ``None`` restores serial execution.
    """
    global _default_n_jobs
    if n_jobs is not None:
        from repro.parallel.pool import resolve_n_jobs

        resolve_n_jobs(n_jobs)
    _default_n_jobs = n_jobs


@contextmanager
def default_n_jobs(n_jobs: int | str | None) -> Iterator[None]:
    """Scoped :func:`set_default_n_jobs` (restores the previous value)."""
    previous = get_default_n_jobs()
    set_default_n_jobs(n_jobs)
    try:
        yield
    finally:
        set_default_n_jobs(previous)
