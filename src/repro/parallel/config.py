"""Process-wide default parallelism.

A tiny settings shim so entry points (the experiments CLI's ``--jobs``
flag, scripts) can install a default ``n_jobs`` that every fleet
dispatch picks up — fault campaigns and experiments ride
:func:`~repro.sim.runner.run_many_until_stable`, so one installed
default parallelizes them all without threading a parameter through
every call site.  Explicit ``n_jobs=`` arguments always win; worker
processes never consult the default (they pin ``n_jobs=1``), so a
forked worker cannot recurse into a pool of its own.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_default_n_jobs: int | str | None = None


def get_default_n_jobs() -> int | str | None:
    """The installed process-wide default (``None`` = serial)."""
    return _default_n_jobs


def set_default_n_jobs(n_jobs: int | str | None) -> None:
    """Install a process-wide default ``n_jobs`` spec.

    Accepts what :func:`~repro.parallel.pool.resolve_n_jobs` accepts
    (validated eagerly); ``None`` restores serial execution.
    """
    global _default_n_jobs
    if n_jobs is not None:
        from repro.parallel.pool import resolve_n_jobs

        resolve_n_jobs(n_jobs)
    _default_n_jobs = n_jobs


@contextmanager
def default_n_jobs(n_jobs: int | str | None) -> Iterator[None]:
    """Scoped :func:`set_default_n_jobs` (restores the previous value)."""
    previous = get_default_n_jobs()
    set_default_n_jobs(n_jobs)
    try:
        yield
    finally:
        set_default_n_jobs(previous)
