"""Deterministic fault injection for the worker fleet.

The paper's subject is recovery from adversarial corruption; this
module is the adversary for our own execution substrate.  A
:class:`ChaosPolicy` rides into every worker (it is part of the worker
spawn arguments, see :func:`~repro.parallel.worker.worker_main`) and
decides, per ``(shard, attempt)``, whether the worker should die
before reporting, hang past its deadline, start slow, or return a
poisoned result — each decision a pure function of the policy's seed,
so every recovery path of the :class:`~repro.parallel.supervisor.
SupervisedPool` is reproducibly testable: the same seed produces the
same kills in the same places on every run, on every machine, under
both ``fork`` and ``spawn``.

Two modes:

* **Scripted** (``plan={...}``): an explicit ``{(shard, attempt):
  fault}`` table.  The unit tests' mode — "kill attempt 0 of shard
  (0, 64), hang attempt 0 of shard (64, 128)" pins one recovery path
  each.
* **Seeded** (``seed=`` + per-fault rates): each ``(shard, attempt)``
  draws once from ``random.Random(f"{seed}:{shard}:{attempt}")`` —
  the stdlib seeds strings via SHA-512, so the draw is stable across
  processes and hash randomization.  ``max_faulty_attempts`` bounds
  how many attempts of one shard may fault (default 1), guaranteeing
  a retrying supervisor always converges.

Fault semantics (implemented in ``worker_main``):

========  ==========================================================
fault     worker behavior
========  ==========================================================
"kill"    ``os._exit(CHAOS_KILL_EXIT)`` before touching the job
"hang"    sleep ``hang_seconds`` before running (deadline territory)
"slow"    sleep ``slow_seconds`` before running (benign straggler)
"poison"  report ``ShardResult(indices, POISON_PAYLOAD)`` instead of
          running — unpicklable garbage the master must quarantine
========  ==========================================================

Chaos only perturbs *scheduling and transport*, never simulation
state: a faulted shard is re-dispatched from its original payload (or
degraded to an in-process run), and every replica owns an independent
coin stream, so campaign results under chaos are bitwise-identical to
the fault-free serial run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping

#: Exit code of a chaos-killed worker — recognizable in supervisor
#: event logs and ``ShardFailedError`` messages.
CHAOS_KILL_EXIT = 86

#: The poisoned-result payload: deliberately not a valid pickle, so any
#: master that fails to validate before unpickling fails loudly.
POISON_PAYLOAD = b"\x80repro-chaos-poison"

#: The recognized fault kinds, in seeded-draw precedence order.
FAULT_KINDS = ("kill", "hang", "poison", "slow")

#: A shard identity as the chaos policy keys it: the replica range.
ShardKey = tuple[int, int]


@dataclass(frozen=True)
class ChaosPolicy:
    """Seeded or scripted per-``(shard, attempt)`` fault injection.

    Parameters
    ----------
    seed:
        Master seed of the seeded mode (also recorded in
        :class:`~repro.parallel.retry.ShardFailedError` for replay).
    kill, hang, poison, slow:
        Per-attempt fault probabilities (seeded mode).  At most one
        fault fires per attempt; draws use cumulative thresholds in
        :data:`FAULT_KINDS` order.
    max_faulty_attempts:
        In seeded mode, attempts ``>= max_faulty_attempts`` of any
        shard never fault (default 1: only first attempts are at
        risk), so bounded retries always converge.  ``None`` removes
        the bound — retry exhaustion becomes reachable.
    hang_seconds, slow_seconds:
        Sleep lengths of the ``"hang"`` / ``"slow"`` faults.
    plan:
        Scripted mode: explicit ``{(shard, attempt): fault}``; when
        given, the rates are ignored and anything absent from the
        table runs clean.
    """

    seed: int = 0
    kill: float = 0.0
    hang: float = 0.0
    poison: float = 0.0
    slow: float = 0.0
    max_faulty_attempts: int | None = 1
    hang_seconds: float = 30.0
    slow_seconds: float = 0.05
    plan: Mapping[tuple[ShardKey, int], str] | None = field(default=None)

    def __post_init__(self) -> None:
        rates = (self.kill, self.hang, self.poison, self.slow)
        if any(r < 0 for r in rates) or sum(rates) > 1.0 + 1e-9:
            raise ValueError(
                "fault rates must be >= 0 and sum to at most 1; got "
                f"kill={self.kill} hang={self.hang} "
                f"poison={self.poison} slow={self.slow}"
            )
        if self.plan is not None:
            for (key, attempt), fault in self.plan.items():
                if fault not in FAULT_KINDS:
                    raise ValueError(
                        f"unknown fault {fault!r} for {key} attempt "
                        f"{attempt}; expected one of {FAULT_KINDS}"
                    )

    @classmethod
    def scripted(
        cls,
        plan: Mapping[tuple[ShardKey, int], str],
        *,
        hang_seconds: float = 30.0,
        slow_seconds: float = 0.05,
        seed: int = 0,
    ) -> "ChaosPolicy":
        """Build an explicit-plan policy (the unit tests' mode)."""
        return cls(
            seed=seed,
            plan=dict(plan),
            hang_seconds=hang_seconds,
            slow_seconds=slow_seconds,
        )

    def fault_for(self, key: ShardKey, attempt: int) -> str | None:
        """The fault to inject for ``attempt`` of shard ``key``, if any.

        A pure function of ``(self, key, attempt)``: the same policy
        answers identically in the master, in any worker, and on any
        rerun — the chaos harness's determinism contract.
        """
        if self.plan is not None:
            return self.plan.get((tuple(key), attempt))
        if (
            self.max_faulty_attempts is not None
            and attempt >= self.max_faulty_attempts
        ):
            return None
        # String seeding hashes via SHA-512: stable across processes,
        # platforms, and PYTHONHASHSEED — unlike hash(tuple).
        draw = random.Random(f"{self.seed}:{key!r}:{attempt}").random()
        threshold = 0.0
        for kind in FAULT_KINDS:
            threshold += getattr(self, kind)
            if draw < threshold:
                return kind
        return None


@dataclass(frozen=True)
class ServiceChaosPolicy:
    """Churn-aware fault injection for :class:`repro.dynamic.service.MISService`.

    The service analogue of :class:`ChaosPolicy`, keyed by
    ``(stream_offset, attempt)`` instead of ``(shard, attempt)``: the
    *offset* is the mutation-stream position the service is about to
    consume, and the *attempt* counts how many times this offset has
    been reached across kill/resume cycles.  Faults fire *before* the
    event is applied — events are atomic — so a killed service resumes
    from its checkpoint and replays the offset bitwise-identically.

    Fault semantics (implemented in ``MISService.run``):

    ========  ========================================================
    fault     service behavior
    ========  ========================================================
    "kill"    close the journal and raise ``ServiceKilledError``
    "poison"  tear the journal tail (a torn, newline-less fragment —
              see ``CheckpointJournal.tear_tail``), then die as "kill"
    "hang"    sleep ``hang_seconds`` before the event (liveness blip)
    "slow"    sleep ``slow_seconds`` before the event
    ========  ========================================================

    ``max_faulty_attempts`` (default 1) bounds faults per offset, so a
    restarting driver (:func:`repro.dynamic.service.run_with_chaos`)
    always terminates.
    """

    seed: int = 0
    kill: float = 0.0
    hang: float = 0.0
    poison: float = 0.0
    slow: float = 0.0
    max_faulty_attempts: int | None = 1
    hang_seconds: float = 0.05
    slow_seconds: float = 0.01
    plan: Mapping[tuple[int, int], str] | None = field(default=None)

    def __post_init__(self) -> None:
        rates = (self.kill, self.hang, self.poison, self.slow)
        if any(r < 0 for r in rates) or sum(rates) > 1.0 + 1e-9:
            raise ValueError(
                "fault rates must be >= 0 and sum to at most 1; got "
                f"kill={self.kill} hang={self.hang} "
                f"poison={self.poison} slow={self.slow}"
            )
        if self.plan is not None:
            for (offset, attempt), fault in self.plan.items():
                if fault not in FAULT_KINDS:
                    raise ValueError(
                        f"unknown fault {fault!r} for offset {offset} "
                        f"attempt {attempt}; expected one of {FAULT_KINDS}"
                    )

    @classmethod
    def scripted(
        cls,
        plan: Mapping[tuple[int, int], str],
        *,
        hang_seconds: float = 0.05,
        slow_seconds: float = 0.01,
        seed: int = 0,
    ) -> "ServiceChaosPolicy":
        """Build an explicit ``{(offset, attempt): fault}`` policy."""
        return cls(
            seed=seed,
            plan=dict(plan),
            hang_seconds=hang_seconds,
            slow_seconds=slow_seconds,
        )

    def fault_for(self, offset: int, attempt: int) -> str | None:
        """The fault to inject at ``(stream offset, attempt)``, if any.

        A pure function of ``(self, offset, attempt)`` — same SHA-512
        string-seeding discipline as :meth:`ChaosPolicy.fault_for`, on
        a disjoint key namespace (``"svc"``), so a shared seed never
        correlates worker faults with service faults.
        """
        if self.plan is not None:
            return self.plan.get((int(offset), int(attempt)))
        if (
            self.max_faulty_attempts is not None
            and attempt >= self.max_faulty_attempts
        ):
            return None
        draw = random.Random(f"{self.seed}:svc:{offset}:{attempt}").random()
        threshold = 0.0
        for kind in FAULT_KINDS:
            threshold += getattr(self, kind)
            if draw < threshold:
                return kind
        return None
