"""repro — reproduction of Giakkoupis & Ziccardi (PODC 2023),
"Distributed Self-Stabilizing MIS with Few States and Weak Communication".

Public API overview
-------------------
Graphs (``repro.graphs``):
    :class:`~repro.graphs.Graph`, deterministic generators
    (:func:`~repro.graphs.complete_graph`, ...), random models
    (:func:`~repro.graphs.gnp_random_graph`, ...), structural properties
    and the good-graph checkers of Definition 17.

Processes (``repro.core``):
    :class:`~repro.core.TwoStateMIS` (Definition 4),
    :class:`~repro.core.ThreeStateMIS` (Definition 5),
    :class:`~repro.core.RandomizedLogSwitch` (Definition 26),
    :class:`~repro.core.ThreeColorMIS` (Definition 28).

Communication models (``repro.models``):
    beeping with sender collision detection, synchronous stone age, and
    transient-fault adversaries.

Baselines (``repro.baselines``):
    Luby's algorithm, greedy MIS, the sequential self-stabilizing
    algorithm under several schedulers.

Simulation & experiments (``repro.sim``, ``repro.experiments``):
    run-until-stable engine, Monte-Carlo estimation, polylog fitting,
    and one registered experiment per theorem/lemma (E1-E12).

Quickstart
----------
>>> from repro import gnp_random_graph, TwoStateMIS, run_until_stable
>>> g = gnp_random_graph(200, 0.05, rng=1)
>>> proc = TwoStateMIS(g, coins=7)
>>> result = run_until_stable(proc, max_rounds=10_000)
>>> result.stabilized
True
"""

from repro.graphs import (
    Graph,
    GraphBuilder,
    complete_graph,
    path_graph,
    cycle_graph,
    star_graph,
    grid_graph,
    balanced_tree,
    disjoint_cliques,
    gnp_random_graph,
    random_tree,
    random_regular_graph,
    check_good_graph,
)
from repro.core import (
    TwoStateMIS,
    ThreeStateMIS,
    ThreeColorMIS,
    RandomizedLogSwitch,
    is_independent_set,
    is_maximal_independent_set,
    assert_valid_mis,
)
from repro.sim import (
    SeededCoins,
    run_until_stable,
    estimate_stabilization_time,
    sweep_stabilization_times,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphBuilder",
    "complete_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "grid_graph",
    "balanced_tree",
    "disjoint_cliques",
    "gnp_random_graph",
    "random_tree",
    "random_regular_graph",
    "check_good_graph",
    "TwoStateMIS",
    "ThreeStateMIS",
    "ThreeColorMIS",
    "RandomizedLogSwitch",
    "is_independent_set",
    "is_maximal_independent_set",
    "assert_valid_mis",
    "SeededCoins",
    "run_until_stable",
    "estimate_stabilization_time",
    "sweep_stabilization_times",
    "__version__",
]
